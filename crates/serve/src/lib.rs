//! # tea-serve — a batched multi-solve scheduler
//!
//! TeaLeaf's driver runs one deck at a time. Parameter sweeps,
//! ensemble studies and regression farms run *many* — most of them
//! near-duplicates — and the per-solve setup tax (workspace
//! allocation, preconditioner assembly, eigenvalue analysis) dominates
//! once the solves themselves are small. This crate adds the missing
//! middle layer: a work queue that drains independent solve jobs over
//! a pool of worker threads, checking reusable
//! [`tea_core::SolveSession`]s in and out of a keyed
//! [`tea_core::SetupCache`] so repeated setups skip preparation
//! entirely.
//!
//! Two entry points:
//!
//! * [`serve_with`] — the generic scheduler: any job type, any run
//!   function. The deck-serving layer in `tea-app` (and the `tealeaf
//!   --serve` CLI) is built on it.
//! * [`serve_requests`] — builder-style jobs: a [`SolveRequest`]
//!   carries an operator, a right-hand side and a
//!   [`tea_core::SessionSpec`]; the scheduler caches sessions across
//!   requests with equal [`tea_core::SetupKey`]s.
//!
//! Every serve returns a [`ServeReport`]: per-job outcomes in
//! submission order plus [`QueueStats`] — throughput, latency
//! percentiles, recovery counters, and the cache's hit/miss/prepare
//! counters.
//!
//! ## Fault tolerance
//!
//! A serving queue fed from untrusted job lists must survive anything
//! a single job does:
//!
//! * **Panic isolation** — each attempt runs under
//!   [`std::panic::catch_unwind`]; a panicking job records a
//!   [`JobError::Panicked`] outcome (and bumps
//!   [`QueueStats::panics_recovered`]) instead of killing its worker
//!   or poisoning the queue. All queue locks are poison-tolerant.
//! * **Deadlines** — [`ServeOptions::deadline`] arms a fresh
//!   [`tea_core::StopHandle`] per attempt; solvers observe it at every
//!   outer iteration and return a `Cancelled` status, which the queue
//!   reports as [`JobError::TimedOut`]. Timeouts are terminal (never
//!   retried), so a job's wall clock stays bounded.
//! * **Bounded retry** — transient failures ([`JobError::is_transient`]:
//!   panics and divergence) are retried up to [`ServeOptions::retries`]
//!   times with a small backoff; [`QueueStats::retries`] counts the
//!   re-runs. The attempt index reaches the run function through
//!   [`JobCtx`], so deterministic fault injectors can arm themselves on
//!   the first attempt only.
//! * **Graceful degradation** — [`serve_requests`] escalates a solve
//!   whose status is `Diverged` along the precision ladder
//!   (`cg_f32 → mixed_cg → cg`) via
//!   [`tea_core::solver_for_precision`], recording each abandoned rung
//!   in [`RequestOutput::escalations`] (or, if every rung diverges, in
//!   [`JobError::Diverged`]'s attempt history). Diverged or cancelled
//!   sessions are dropped, never checked back into the pool.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tea_core::{
    lock_tolerant, solver_for_precision, CacheStats, SessionSpec, SetupCache, SetupKey,
    SolveControls, SolveResult, SolveSession, SolveStatus, SolverRegistry, StopHandle,
    TileOperator,
};
use tea_mesh::Field2D;

/// How a serve runs: worker count, kernel thread budget, caching,
/// deadlines and retry policy.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent jobs in flight (worker threads draining the queue).
    /// `0` means one per available core.
    pub workers: usize,
    /// Kernel threads per job. The sweep thread pool is process-global,
    /// so this is applied once at serve start (not per job): with W
    /// workers each running T-thread sweeps, size `W × T` to the
    /// machine. `None` leaves the ambient configuration alone. The
    /// ambient value is restored when the drain completes.
    pub threads_per_job: Option<usize>,
    /// Whether to pool sessions in a [`SetupCache`] across jobs.
    /// Disabling it makes every job build (and prepare) cold — the
    /// baseline the throughput bench compares against.
    pub cache: bool,
    /// Wall-clock budget per attempt. Solvers check the armed
    /// [`StopHandle`] at every outer iteration; an expired attempt
    /// reports [`JobError::TimedOut`] and is not retried. `None` (the
    /// default) never arms a deadline.
    pub deadline: Option<Duration>,
    /// Extra attempts for transient failures (panics, divergence).
    /// `0` (the default) fails on first error, exactly like the old
    /// behaviour.
    pub retries: u32,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            threads_per_job: None,
            cache: true,
            deadline: None,
            retries: 0,
        }
    }
}

impl ServeOptions {
    /// The worker count after resolving `0` to the core count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Why a job failed, as a typed classification rather than a string —
/// the chaos bench and the retry policy both dispatch on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's code panicked; the worker caught it and moved on.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The attempt's deadline expired and the solve was cancelled.
    TimedOut,
    /// The solve produced a non-finite residual on every available
    /// precision rung.
    Diverged {
        /// Outer iteration at which the last rung detected divergence.
        iteration: u64,
        /// Every solver tried, in escalation order.
        attempts: Vec<String>,
    },
    /// Anything else: malformed problem, unknown solver, ...
    Failed {
        /// Human-readable cause.
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::TimedOut => write!(f, "job deadline expired"),
            JobError::Diverged {
                iteration,
                attempts,
            } => write!(
                f,
                "solve diverged at iteration {iteration} (tried: {})",
                attempts.join(" → ")
            ),
            JobError::Failed { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    /// Whether a retry could plausibly succeed. Panics and divergence
    /// are transient (a deterministic fault injector arms only the
    /// first attempt; a diverged solve may recover on re-run from the
    /// clean warm start); timeouts and structural failures are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::Panicked { .. } | JobError::Diverged { .. })
    }
}

/// Per-attempt context handed to the run function: the job's
/// submission index, which attempt this is (0 = first), and the
/// cancellation token the attempt must observe.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx<'a> {
    /// Index of the job in the submitted list.
    pub job: usize,
    /// 0 on the first attempt, incremented per retry.
    pub attempt: u32,
    /// Cancellation/deadline token for this attempt. Pass it into
    /// [`tea_core::SolveSession::solve_controlled`] (via
    /// [`SolveControls::stopping`]) so deadlines can interrupt the
    /// iteration loop.
    pub stop: &'a StopHandle,
}

/// One job's result: payload or typed error, plus its wall-clock
/// latency and how many attempts it took.
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// Index of the job in the submitted list.
    pub job: usize,
    /// The job's payload, or why it failed.
    pub result: Result<T, JobError>,
    /// Attempts consumed (1 = succeeded or failed terminally on the
    /// first try).
    pub attempts: u32,
    /// Seconds from checkout to completion, across all attempts.
    pub wall_s: f64,
}

/// Queue-level statistics for a completed serve.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that returned an error outcome.
    pub failed: usize,
    /// Attempts that hit their deadline.
    pub timeouts: u64,
    /// Re-runs of transiently failed attempts.
    pub retries: u64,
    /// Panics caught and converted into outcomes.
    pub panics_recovered: u64,
    /// Wall-clock seconds for the whole drain.
    pub wall_s: f64,
    /// Completed jobs per second of drain time.
    pub jobs_per_sec: f64,
    /// Median per-job latency in seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile per-job latency in seconds.
    pub p99_latency_s: f64,
    /// Setup-cache counters (hits/misses/prepares). With caching off,
    /// hits are zero and every job counts a prepare.
    pub cache: CacheStats,
}

/// Everything a serve returns: outcomes in submission order + stats.
#[derive(Debug)]
pub struct ServeReport<T> {
    /// Per-job outcomes, sorted by submission index.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Queue-level statistics.
    pub stats: QueueStats,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drains `jobs` through `run` on a pool of worker threads and reports
/// per-job outcomes plus queue statistics. `run` receives a [`JobCtx`]
/// (submission index, attempt number, stop token) and a reference to
/// the job; returning `Err` records a failed outcome without stopping
/// the queue.
///
/// Each attempt runs under `catch_unwind`: a panicking job is
/// converted into [`JobError::Panicked`] and the worker keeps
/// draining. Transient errors are retried up to
/// [`ServeOptions::retries`] times with a short backoff; each attempt
/// gets a fresh deadline from [`ServeOptions::deadline`].
///
/// `cache_stats` (when given) is folded into the report's
/// [`QueueStats::cache`] — callers running their jobs over a
/// [`SetupCache`] pass its post-drain counters through this hook.
pub fn serve_with<J, T, F>(
    jobs: Vec<J>,
    opts: &ServeOptions,
    run: F,
    cache_stats: impl FnOnce() -> CacheStats,
) -> ServeReport<T>
where
    J: Sync,
    T: Send,
    F: Fn(JobCtx<'_>, &J) -> Result<T, JobError> + Sync,
{
    // The sweep pool is process-global: remember the ambient setting so
    // the drain doesn't permanently reconfigure the host process.
    let saved_threads = opts.threads_per_job.map(|threads| {
        let ambient = tea_core::num_threads();
        tea_core::set_num_threads(threads);
        ambient
    });
    let total = jobs.len();
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..total).collect());
    let outcomes: Mutex<Vec<JobOutcome<T>>> = Mutex::new(Vec::with_capacity(total));
    let workers = opts.effective_workers().min(total.max(1));
    let timeouts = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let panics_recovered = AtomicU64::new(0);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = lock_tolerant(&queue).pop_front();
                let Some(job) = next else {
                    break;
                };
                let job_started = Instant::now();
                let mut attempt: u32 = 0;
                let result = loop {
                    let stop = match opts.deadline {
                        Some(budget) => StopHandle::with_deadline(budget),
                        None => StopHandle::disarmed(),
                    };
                    let ctx = JobCtx {
                        job,
                        attempt,
                        stop: &stop,
                    };
                    let err =
                        match std::panic::catch_unwind(AssertUnwindSafe(|| run(ctx, &jobs[job]))) {
                            Ok(Ok(payload)) => break Ok(payload),
                            Ok(Err(err)) => err,
                            Err(panic) => {
                                panics_recovered.fetch_add(1, Ordering::Relaxed);
                                JobError::Panicked {
                                    message: panic_message(panic),
                                }
                            }
                        };
                    if err == JobError::TimedOut {
                        timeouts.fetch_add(1, Ordering::Relaxed);
                    }
                    if err.is_transient() && attempt < opts.retries {
                        retries.fetch_add(1, Ordering::Relaxed);
                        attempt += 1;
                        // linear backoff, bounded: transient faults are
                        // injected or numerical, not contention, so a
                        // token pause suffices
                        std::thread::sleep(Duration::from_millis(u64::from(attempt.min(8))));
                        continue;
                    }
                    break Err(err);
                };
                let wall_s = job_started.elapsed().as_secs_f64();
                lock_tolerant(&outcomes).push(JobOutcome {
                    job,
                    result,
                    attempts: attempt + 1,
                    wall_s,
                });
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    if let Some(ambient) = saved_threads {
        tea_core::set_num_threads(ambient);
    }

    let mut outcomes = outcomes
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    outcomes.sort_by_key(|o| o.job);
    let mut latencies: Vec<f64> = outcomes.iter().map(|o| o.wall_s).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let failed = outcomes.iter().filter(|o| o.result.is_err()).count();

    let stats = QueueStats {
        jobs: total,
        failed,
        timeouts: timeouts.into_inner(),
        retries: retries.into_inner(),
        panics_recovered: panics_recovered.into_inner(),
        wall_s,
        jobs_per_sec: if wall_s > 0.0 {
            total as f64 / wall_s
        } else {
            0.0
        },
        p50_latency_s: percentile(&latencies, 50.0),
        p99_latency_s: percentile(&latencies, 99.0),
        cache: cache_stats(),
    };
    ServeReport { outcomes, stats }
}

/// A builder-style solve job: operator + right-hand side + session
/// spec. The warm start is `u = b`, matching the driver convention.
#[derive(Debug)]
pub struct SolveRequest {
    /// The assembled operator to solve against.
    pub op: TileOperator,
    /// Right-hand side (also the warm start).
    pub b: Field2D,
    /// Solver, precision, options and knobs for the session.
    pub spec: SessionSpec,
}

/// What a served [`SolveRequest`] returns.
#[derive(Debug)]
pub struct RequestOutput {
    /// The solve's result and protocol trace.
    pub result: SolveResult,
    /// The solution field.
    pub u: Field2D,
    /// Canonical name of the solver that produced the result (after
    /// precision routing and any escalation).
    pub solver: String,
    /// Solvers abandoned to divergence before `solver` succeeded, in
    /// escalation order. Empty on the happy path.
    pub escalations: Vec<String>,
}

/// The next rung of the graceful-degradation ladder for `name`:
/// reduced-precision methods escalate towards the full-`f64` member of
/// their family (`cg_f32 → mixed_cg → cg`), full-precision methods
/// have nowhere further to go. The ladder itself is owned by the
/// `tea-tune` policy layer ([`tea_tune::next_precision_rung`]); this
/// re-export keeps the serving API stable for the deck-serving layer
/// in `tea-app`.
pub use tea_tune::next_precision_rung;

/// Serves builder-style [`SolveRequest`]s over a session pool: requests
/// whose `(op, spec)` produce equal [`SetupKey`]s share prepared
/// sessions (and memoised eigenvalue estimates), so repeated requests
/// skip the setup tax while returning bit-identical results.
///
/// Solves observe the per-attempt stop token, so
/// [`ServeOptions::deadline`] interrupts long solves mid-iteration. A
/// solve that diverges (non-finite residual) escalates along the
/// precision ladder — see [`RequestOutput::escalations`]. Sessions
/// that diverged or were cancelled are dropped rather than returned to
/// the pool.
pub fn serve_requests(
    requests: Vec<SolveRequest>,
    opts: &ServeOptions,
) -> ServeReport<RequestOutput> {
    let registry = SolverRegistry::default();
    let cache = SetupCache::new();
    let cold_prepares = AtomicU64::new(0);
    let use_cache = opts.cache;
    let fail = |e: tea_core::SolverError| JobError::Failed {
        message: e.to_string(),
    };
    let run = |ctx: JobCtx<'_>, req: &SolveRequest| -> Result<RequestOutput, JobError> {
        // resolve precision routing once, so escalation starts from the
        // solver that would actually have run
        let mut spec = req.spec.clone();
        spec.solver = match spec.precision.take() {
            Some(p) => solver_for_precision(&spec.solver, p, &registry).map_err(fail)?,
            None => registry
                .resolve(&spec.solver)
                .map_err(fail)?
                .name
                .to_string(),
        };
        let mut escalations: Vec<String> = Vec::new();
        loop {
            let mut session = if use_cache {
                let key = SetupKey::probe(&req.op, &spec).map_err(fail)?;
                match cache.checkout(&key) {
                    Some(session) => session,
                    None => SolveSession::build(req.op.clone(), &spec).map_err(fail)?,
                }
            } else {
                SolveSession::build(req.op.clone(), &spec).map_err(fail)?
            };
            session.reset_comm_stats();
            let mut u = req.b.clone();
            let result =
                session.solve_controlled(&mut u, &req.b, SolveControls::stopping(ctx.stop));
            let finish_session = |session: SolveSession, keep: bool| {
                if !use_cache {
                    cold_prepares.fetch_add(session.prepare_count(), Ordering::Relaxed);
                } else if keep {
                    cache.checkin(session);
                }
                // diverged/cancelled cached sessions are dropped here
            };
            match result.status {
                SolveStatus::Cancelled { .. } => {
                    finish_session(session, false);
                    return Err(JobError::TimedOut);
                }
                SolveStatus::Diverged { iteration } => {
                    finish_session(session, false);
                    escalations.push(spec.solver.clone());
                    match next_precision_rung(&spec.solver, &registry) {
                        Some(next) => {
                            spec.solver = next;
                            continue;
                        }
                        None => {
                            return Err(JobError::Diverged {
                                iteration,
                                attempts: escalations,
                            })
                        }
                    }
                }
                SolveStatus::Converged | SolveStatus::IterationLimit => {
                    let solver = spec.solver.clone();
                    finish_session(session, true);
                    return Ok(RequestOutput {
                        result,
                        u,
                        solver,
                        escalations,
                    });
                }
            }
        }
    };
    serve_with(requests, opts, run, || {
        let mut stats = cache.stats();
        stats.prepares += cold_prepares.load(Ordering::Relaxed);
        stats
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_core::{crooked_pipe_system, Precision};

    fn requests(n_jobs: usize, distinct_sizes: &[usize]) -> Vec<SolveRequest> {
        (0..n_jobs)
            .map(|i| {
                let n = distinct_sizes[i % distinct_sizes.len()];
                let (op, b) = crooked_pipe_system(n, 0.04, 1);
                let mut spec = SessionSpec::solver("cg");
                spec.opts.eps = 1e-8;
                SolveRequest { op, b, spec }
            })
            .collect()
    }

    #[test]
    fn serves_all_jobs_and_counts_cache_traffic() {
        let report = serve_requests(
            requests(12, &[16, 20, 24]),
            &ServeOptions {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(report.outcomes.len(), 12);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.stats.timeouts, 0);
        assert_eq!(report.stats.panics_recovered, 0);
        assert!(report.stats.jobs_per_sec > 0.0);
        assert!(report.stats.p99_latency_s >= report.stats.p50_latency_s);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.job, i, "outcomes must come back in submission order");
            assert_eq!(o.attempts, 1);
            let out = o.result.as_ref().unwrap();
            assert!(out.result.converged);
            assert_eq!(out.solver, "cg");
            assert!(out.escalations.is_empty());
        }
        let cache = report.stats.cache;
        // 3 distinct setups: 3 misses, 9 hits (modulo worker racing on
        // first touch, which can only add misses — never hits beyond 9)
        assert_eq!(cache.hits + cache.misses, 12);
        assert!(cache.hits > 0, "repeated setups must hit the cache");
        assert!(cache.misses >= 3);
        assert_eq!(cache.prepares, cache.misses, "hits must not re-prepare");
    }

    #[test]
    fn cache_off_prepares_every_job() {
        let report = serve_requests(
            requests(8, &[16, 20]),
            &ServeOptions {
                workers: 2,
                cache: false,
                ..Default::default()
            },
        );
        assert_eq!(report.stats.failed, 0);
        let cache = report.stats.cache;
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.prepares, 8, "cold path prepares once per job");
    }

    #[test]
    fn cached_and_cold_runs_agree_bitwise() {
        let on = serve_requests(requests(9, &[16, 20, 24]), &ServeOptions::default());
        let off = serve_requests(
            requests(9, &[16, 20, 24]),
            &ServeOptions {
                cache: false,
                ..Default::default()
            },
        );
        for (a, b) in on.outcomes.iter().zip(&off.outcomes) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.u, b.u, "cache must not change results");
            assert_eq!(a.result.iterations, b.result.iterations);
            assert_eq!(
                a.result.final_residual.to_bits(),
                b.result.final_residual.to_bits()
            );
        }
        assert!(on.stats.cache.prepares < off.stats.cache.prepares);
    }

    #[test]
    fn a_bad_job_fails_alone() {
        let mut jobs = requests(3, &[16]);
        jobs[1].spec.solver = "warp-drive".to_string();
        let report = serve_requests(jobs, &ServeOptions::default());
        assert_eq!(report.stats.failed, 1);
        assert!(report.outcomes[0].result.is_ok());
        let err = report.outcomes[1].result.as_ref().unwrap_err();
        assert!(
            matches!(err, JobError::Failed { .. }),
            "unknown solver is a structural failure: {err:?}"
        );
        assert!(err.to_string().contains("warp-drive"), "{err}");
        assert!(report.outcomes[2].result.is_ok(), "queue must keep going");
    }

    #[test]
    fn a_panicking_job_is_isolated_and_counted() {
        let report = serve_with(
            vec![1usize, 2, 3],
            &ServeOptions {
                workers: 2,
                ..Default::default()
            },
            |ctx, &n| {
                if ctx.job == 1 {
                    panic!("injected worker panic on job {n}");
                }
                Ok::<usize, JobError>(n * 10)
            },
            CacheStats::default,
        );
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.panics_recovered, 1);
        assert_eq!(report.outcomes[0].result, Ok(10));
        assert_eq!(report.outcomes[2].result, Ok(30), "queue survives a panic");
        match report.outcomes[1].result.as_ref().unwrap_err() {
            JobError::Panicked { message } => {
                assert!(message.contains("injected worker panic"), "{message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn transient_failures_retry_and_recover() {
        // Job 0 panics on its first attempt only — the shape of a
        // deterministic fault injector — and must recover on retry.
        let report = serve_with(
            vec![0usize, 1],
            &ServeOptions {
                workers: 1,
                retries: 2,
                ..Default::default()
            },
            |ctx, &n| {
                if ctx.job == 0 && ctx.attempt == 0 {
                    panic!("flaky once");
                }
                Ok::<usize, JobError>(n)
            },
            CacheStats::default,
        );
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.stats.panics_recovered, 1);
        assert_eq!(report.stats.retries, 1);
        assert_eq!(report.outcomes[0].result, Ok(0));
        assert_eq!(report.outcomes[0].attempts, 2);
        assert_eq!(report.outcomes[1].attempts, 1);
    }

    #[test]
    fn an_exhausted_retry_budget_reports_the_error() {
        let report = serve_with(
            vec![()],
            &ServeOptions {
                workers: 1,
                retries: 2,
                ..Default::default()
            },
            |_, ()| -> Result<(), JobError> { panic!("always down") },
            CacheStats::default,
        );
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.retries, 2);
        assert_eq!(report.stats.panics_recovered, 3, "each attempt panicked");
        assert_eq!(report.outcomes[0].attempts, 3);
        assert!(matches!(
            report.outcomes[0].result,
            Err(JobError::Panicked { .. })
        ));
    }

    #[test]
    fn a_zero_deadline_times_out_without_retrying() {
        let report = serve_requests(
            requests(3, &[20]),
            &ServeOptions {
                workers: 2,
                deadline: Some(Duration::ZERO),
                retries: 3,
                ..Default::default()
            },
        );
        assert_eq!(report.stats.failed, 3);
        assert_eq!(report.stats.timeouts, 3);
        assert_eq!(report.stats.retries, 0, "timeouts must not be retried");
        for o in &report.outcomes {
            assert_eq!(o.result.as_ref().unwrap_err(), &JobError::TimedOut);
            assert_eq!(o.attempts, 1);
        }
    }

    #[test]
    fn divergence_walks_the_whole_ladder() {
        // A NaN right-hand side diverges at iteration 0 on every rung,
        // so the job must try cg_f32 → mixed_cg → cg and report the
        // full attempt history.
        let mut jobs = requests(1, &[16]);
        jobs[0].spec.precision = Some(Precision::F32);
        jobs[0].b.set(8, 8, f64::NAN);
        let report = serve_requests(jobs, &ServeOptions::default());
        assert_eq!(report.stats.failed, 1);
        match report.outcomes[0].result.as_ref().unwrap_err() {
            JobError::Diverged {
                iteration,
                attempts,
            } => {
                assert_eq!(*iteration, 0);
                assert_eq!(attempts, &["cg_f32", "mixed_cg", "cg"]);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn serve_restores_the_ambient_thread_config() {
        let ambient = tea_core::num_threads();
        let report = serve_with(
            vec![()],
            &ServeOptions {
                workers: 1,
                threads_per_job: Some(ambient + 3),
                ..Default::default()
            },
            |_, ()| Ok::<usize, JobError>(tea_core::num_threads()),
            CacheStats::default,
        );
        assert_eq!(
            report.outcomes[0].result,
            Ok(ambient + 3),
            "the per-job budget applies during the drain"
        );
        assert_eq!(
            tea_core::num_threads(),
            ambient,
            "the drain must not leak its thread config into the process"
        );
    }
}
