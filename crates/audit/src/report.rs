//! Findings and the machine-readable audit report.

/// One contract violation (or advisory note) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`wall_clock`, `panic_hygiene`, `registry`, ...).
    pub rule: &'static str,
    /// Path relative to the workspace root (or a logical location like
    /// `<registry>` for audits with no file).
    pub file: String,
    /// 1-based line number; `0` when the finding has no line.
    pub line: usize,
    /// What is wrong and how to fix it.
    pub message: String,
    /// Advisory findings are reported but only fail under `--deny-all`.
    pub advisory: bool,
}

impl Finding {
    /// A denying finding at `file:line`.
    pub fn deny(rule: &'static str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
            advisory: false,
        }
    }

    /// An advisory finding at `file:line`.
    pub fn advise(rule: &'static str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Finding {
            advisory: true,
            ..Finding::deny(rule, file, line, message)
        }
    }

    /// `file:line [rule] message` (the human-readable line format).
    pub fn render(&self) -> String {
        let level = if self.advisory { "advice" } else { "deny" };
        if self.line == 0 {
            format!("{} [{}/{level}] {}", self.file, self.rule, self.message)
        } else {
            format!(
                "{}:{} [{}/{level}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// A named audit pass and how many findings it produced, so the report
/// records what *ran*, not just what failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Check name (`textual`, `registry`, `deck_keys`, `bench_artifacts`).
    pub name: String,
    /// Findings this check contributed.
    pub findings: usize,
}

/// The machine-readable audit report: every check that ran plus every
/// finding, serializable as a single JSON document for tooling (the
/// `DeckOutcome` of auditing).
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Checks that ran, in execution order.
    pub checks: Vec<CheckOutcome>,
    /// All findings from all checks.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> Self {
        AuditReport::default()
    }

    /// Records `findings` under the named check and appends them.
    pub fn record(&mut self, check: &str, findings: Vec<Finding>) {
        self.checks.push(CheckOutcome {
            name: check.to_string(),
            findings: findings.len(),
        });
        self.findings.extend(findings);
    }

    /// Whether the audit passed: no findings, or (when `deny_all` is
    /// false) only advisory ones.
    pub fn passed(&self, deny_all: bool) -> bool {
        self.findings.iter().all(|f| f.advisory && !deny_all)
    }

    /// Serializes the report as one JSON document.
    pub fn to_json(&self, deny_all: bool) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"audit\": \"tea-audit\",\n");
        out.push_str(&format!("  \"passed\": {},\n", self.passed(deny_all)));
        out.push_str("  \"checks\": [");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"findings\": {}}}",
                json_str(&c.name),
                c.findings
            ));
        }
        out.push_str(if self.checks.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"advisory\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                f.advisory,
                json_str(&f.message)
            ));
        }
        out.push_str(if self.findings.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_our_own_parser() {
        let mut report = AuditReport::new();
        report.record(
            "textual",
            vec![
                Finding::deny("wall_clock", "crates/x/src/lib.rs", 3, "Instant::now"),
                Finding::advise("todo_marker", "crates/x/src/lib.rs", 9, "TODO \"quoted\""),
            ],
        );
        report.record("registry", Vec::new());
        assert!(!report.passed(false));
        let json = report.to_json(false);
        let value = crate::json::parse(&json).expect("report must be valid JSON");
        let obj = value.as_object().expect("top level object");
        assert_eq!(
            obj.iter().find(|(k, _)| k == "passed").map(|(_, v)| v),
            Some(&crate::json::Value::Bool(false))
        );
        let findings = obj
            .iter()
            .find(|(k, _)| k == "findings")
            .and_then(|(_, v)| v.as_array())
            .expect("findings array");
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn advisory_only_passes_unless_deny_all() {
        let mut report = AuditReport::new();
        report.record(
            "textual",
            vec![Finding::advise("todo_marker", "f.rs", 1, "TODO")],
        );
        assert!(report.passed(false));
        assert!(!report.passed(true));
    }
}
