//! The `tea-audit` binary: run the textual linter (plus the file-based
//! semantic audits) over the workspace and exit nonzero on violations.
//!
//! ```text
//! cargo run -p tea-audit                # lint, advisory findings tolerated
//! cargo run -p tea-audit -- --deny-all  # advisory findings fail too (CI)
//! cargo run -p tea-audit -- --json      # machine-readable AuditReport
//! cargo run -p tea-audit -- --list-rules
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tea_audit::{bench_artifact_audit, deck_key_audit, scan_workspace, AuditReport, RULE_IDS};

const USAGE: &str = "\
tea-audit: first-party static analysis for the TeaLeaf-rs workspace

USAGE:
    cargo run -p tea-audit [-- OPTIONS]

OPTIONS:
    --root <dir>    workspace root to audit (default: auto-detected)
    --deny-all      advisory findings (todo_marker) also fail the run
    --json          print the machine-readable AuditReport to stdout
    --list-rules    print the textual rule ids and exit
    --help          this text
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny_all = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--list-rules" => {
                for rule in RULE_IDS {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument '{other}'\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (pass --root <dir>)");
            return ExitCode::FAILURE;
        }
    };

    let mut report = AuditReport::new();
    match scan_workspace(&root) {
        Ok(findings) => report.record("textual", findings),
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    }
    match deck_key_audit(&root) {
        Ok(findings) => report.record("deck_keys", findings),
        Err(e) => {
            eprintln!("error: deck-key audit: {e}");
            return ExitCode::FAILURE;
        }
    }
    match bench_artifact_audit(&root) {
        Ok(findings) => report.record("bench_artifacts", findings),
        Err(e) => {
            eprintln!("error: bench-artifact audit: {e}");
            return ExitCode::FAILURE;
        }
    }

    if json {
        print!("{}", report.to_json(deny_all));
    } else {
        for finding in &report.findings {
            println!("{}", finding.render());
        }
        let denied = report.findings.iter().filter(|f| !f.advisory).count();
        let advisory = report.findings.len() - denied;
        println!(
            "tea-audit: {} check(s), {denied} violation(s), {advisory} advisory",
            report.checks.len()
        );
    }
    if report.passed(deny_all) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory looking for the workspace root
/// (a `Cargo.toml` declaring `[workspace]` next to a `crates/` dir),
/// falling back to the source checkout this binary was built from.
fn find_workspace_root() -> Option<PathBuf> {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if is_workspace_root(&dir) {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let built_from = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    is_workspace_root(&built_from).then_some(built_from)
}

fn is_workspace_root(dir: &Path) -> bool {
    dir.join("crates").is_dir()
        && std::fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|t| t.contains("[workspace]"))
}
