//! The textual linter: a line/token scanner over the workspace's own
//! source trees — every member crate under `crates/`, plus the umbrella
//! package's top-level `src/`, `tests/` and `examples/` (see
//! [`scan_workspace`]; `vendor/` is exempt).
//!
//! Deliberately *not* a type-checker: every rule here is a string
//! pattern over comment-stripped, string-blanked source text, which is
//! enough to machine-enforce contracts that today live in review
//! comments, and cheap enough to run on every push without building
//! the workspace. Each rule documents its escape hatch: a
//! `// audit:allow(<rule>) — <reason>` pragma on (or immediately
//! before) the flagged line. A pragma **must** carry a reason; one
//! without a reason — or naming an unknown rule — is itself a
//! violation, so the allowlist stays self-documenting.
//!
//! | rule | scope | contract |
//! |---|---|---|
//! | `wall_clock` | all crates except `serve`, `app`, `bench` | no `Instant::now`/`SystemTime::now`: solver, comms, tuning and fault paths must be bit-deterministic and replayable |
//! | `nondeterminism` | everywhere (tests exempt) | no `HashMap`/`HashSet`/`RandomState`/`DefaultHasher` in result-affecting paths: iteration order and hash seeds vary per process — use `BTreeMap`/`BTreeSet` or seeded splitmix64 |
//! | `panic_hygiene` | `serve` and `app` (tests exempt) | no `.unwrap()`/`.expect(`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`: the serving path must degrade through typed errors, never abort a worker |
//! | `lock_hygiene` | everywhere (tests included) | no bare `.lock().unwrap()`/`.lock().expect(`: use `tea_core::lock_tolerant`, which recovers poisoned mutexes instead of cascading one panic into every thread |
//! | `crate_hygiene` | every member crate's `lib.rs` | must carry `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` |
//! | `pragma` | everywhere | `audit:allow` pragmas must name a known rule and carry a reason |
//! | `todo_marker` | everywhere (advisory) | surfaces to-do/fix-me markers left in comments; they fail only under `--deny-all` |

use crate::report::Finding;
use std::path::Path;

/// Crates where wall-clock reads are sanctioned: tea-serve (deadlines),
/// tea-app (driver/CLI timing columns) and tea-bench (it measures wall
/// time on purpose). Everywhere else `Instant::now` needs a pragma.
pub const WALL_CLOCK_ALLOWED_CRATES: &[&str] = &["serve", "app", "bench"];

/// Crates under the panic-hygiene contract: the serving queue and the
/// application driver path, where a panic loses a job (or a queue).
pub const PANIC_HYGIENE_CRATES: &[&str] = &["serve", "app"];

/// Every textual rule id the pragma grammar accepts.
pub const RULE_IDS: &[&str] = &[
    "wall_clock",
    "nondeterminism",
    "panic_hygiene",
    "lock_hygiene",
    "crate_hygiene",
    "pragma",
    "todo_marker",
];

/// Per-line views of one source file: `code[i]` is line `i` with
/// comments removed and string-literal *contents* blanked to spaces
/// (delimiters kept), `comments[i]` is the comment text of line `i`.
#[derive(Debug)]
pub struct SourceText {
    /// Comment-free, string-blanked code per line.
    pub code: Vec<String>,
    /// Comment contents per line (where pragmas and to-do markers live).
    pub comments: Vec<String>,
    /// Plain (non-doc) comment contents per line. Pragmas are parsed
    /// from here only, so rustdoc prose *describing* the pragma
    /// grammar is never mistaken for a directive.
    pub directives: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
}

/// Splits Rust source into per-line code and comment streams. Handles
/// line/doc comments, nested block comments, string/char/raw-string
/// literals and escapes; proc-macro exotica is out of scope for a
/// line linter.
pub fn split_source(source: &str) -> SourceText {
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut directives = Vec::new();
    let mut state = LexState::Normal;
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut code_line = String::with_capacity(line.len());
        let mut comment_line = String::new();
        let mut directive_line = String::new();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                LexState::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = LexState::Normal;
                        } else {
                            state = LexState::BlockComment(depth - 1);
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment_line.push(c);
                        directive_line.push(c);
                        i += 1;
                    }
                }
                LexState::Str { raw_hashes } => match raw_hashes {
                    None => {
                        if c == '\\' {
                            code_line.push(' ');
                            if next.is_some() {
                                code_line.push(' ');
                            }
                            i += 2;
                        } else if c == '"' {
                            code_line.push('"');
                            state = LexState::Normal;
                            i += 1;
                        } else {
                            code_line.push(' ');
                            i += 1;
                        }
                    }
                    Some(hashes) => {
                        if c == '"'
                            && chars[i + 1..]
                                .iter()
                                .take(hashes as usize)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes as usize
                        {
                            code_line.push('"');
                            for _ in 0..hashes {
                                code_line.push('#');
                            }
                            state = LexState::Normal;
                            i += 1 + hashes as usize;
                        } else {
                            code_line.push(' ');
                            i += 1;
                        }
                    }
                },
                LexState::Normal => {
                    if c == '/' && next == Some('/') {
                        let text: String = chars[i + 2..].iter().collect();
                        let is_doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
                        if !is_doc {
                            directive_line.push_str(&text);
                        }
                        comment_line.push_str(&text);
                        i = chars.len();
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        code_line.push('"');
                        state = LexState::Str { raw_hashes: None };
                        i += 1;
                    } else if let Some((prefix_len, hashes)) = ((c == 'r' || c == 'b')
                        && !prev_is_ident(&code_line))
                    .then(|| raw_string_hashes(&chars[i..]))
                    .flatten()
                    {
                        for _ in 0..prefix_len {
                            code_line.push('r');
                        }
                        code_line.push('"');
                        state = LexState::Str {
                            raw_hashes: Some(hashes),
                        };
                        i += prefix_len + 1;
                    } else if c == '\'' {
                        // char literal vs lifetime: a literal closes with
                        // a quote after one (possibly escaped) scalar.
                        if next == Some('\\') {
                            // escaped char literal: skip to closing quote
                            let close = chars[i + 2..].iter().position(|&x| x == '\'');
                            let len = close.map(|p| p + 3).unwrap_or(1);
                            for _ in 0..len.min(chars.len() - i) {
                                code_line.push(' ');
                            }
                            i += len;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code_line.push_str("   ");
                            i += 3;
                        } else {
                            code_line.push('\'');
                            i += 1;
                        }
                    } else {
                        code_line.push(c);
                        i += 1;
                    }
                }
            }
        }
        code.push(code_line);
        comments.push(comment_line);
        directives.push(directive_line);
    }
    SourceText {
        code,
        comments,
        directives,
    }
}

fn prev_is_ident(code_line: &str) -> bool {
    code_line
        .chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `chars` starts a raw (byte) string literal (`r"`, `r#"`, `br##"`,
/// ...), returns `(prefix_len_before_quote, hash_count)`.
fn raw_string_hashes(chars: &[char]) -> Option<(usize, u32)> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'"') {
        Some((i, hashes))
    } else {
        None
    }
}

/// One parsed `audit:allow` pragma.
#[derive(Debug, Clone)]
struct Pragma {
    rule: String,
    reason_ok: bool,
    line: usize, // 0-based
}

/// Extracts `audit:allow(<rule>) — <reason>` pragmas from plain
/// (non-doc) comment text.
fn parse_pragmas(comments: &[String]) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for (line, comment) in comments.iter().enumerate() {
        let mut rest = comment.as_str();
        while let Some(at) = rest.find("audit:allow(") {
            let after = &rest[at + "audit:allow(".len()..];
            let Some(close) = after.find(')') else {
                pragmas.push(Pragma {
                    rule: String::new(),
                    reason_ok: false,
                    line,
                });
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = after[close + 1..].trim_start();
            let reason = tail
                .strip_prefix('—')
                .or_else(|| tail.strip_prefix("--"))
                .or_else(|| tail.strip_prefix('-'))
                .or_else(|| tail.strip_prefix(':'))
                .map(str::trim)
                .unwrap_or("");
            pragmas.push(Pragma {
                rule,
                reason_ok: reason.chars().filter(|c| c.is_alphanumeric()).count() >= 3,
                line,
            });
            rest = &after[close + 1..];
        }
    }
    pragmas
}

/// Whether line `line` (0-based) of `code` is inside a `#[cfg(test)]`
/// region, computed by brace tracking. Returned as a per-line mask.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut exempt_at: Option<i64> = None;
    let mut pending = false;
    for (i, line) in code.iter().enumerate() {
        let started_exempt = exempt_at.is_some();
        if line.contains("#[cfg(test)]") {
            pending = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && exempt_at.is_none() {
                        exempt_at = Some(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if exempt_at == Some(depth) {
                        exempt_at = None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        mask[i] = started_exempt || exempt_at.is_some() || pending;
    }
    mask
}

/// Is this path test/bench code by location alone?
///
/// Matches both member-crate trees (`crates/x/tests/...`) and the
/// workspace-root trees of the umbrella package (`tests/...`,
/// `examples/...`), which have no leading component before the marker.
fn path_is_test(rel_path: &str) -> bool {
    let p = rel_path.replace('\\', "/");
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|m| p.contains(&format!("/{m}")) || p.starts_with(m))
}

fn strip_ws(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Runs every textual rule over one file.
///
/// `crate_name` is the member-crate directory name (`"core"`,
/// `"serve"`, ...); `rel_path` is workspace-root-relative and is used
/// both for findings and for location-based test exemption.
pub fn scan_file(crate_name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    let text = split_source(source);
    let pragmas = parse_pragmas(&text.directives);
    let tests = test_mask(&text.code);
    let all_test = path_is_test(rel_path);
    let mut findings = Vec::new();

    // Validate pragmas first: unknown rules and missing reasons are
    // violations in their own right (the escape hatch must stay
    // self-documenting), and only valid pragmas suppress anything.
    let mut suppressed: Vec<(usize, String)> = Vec::new();
    for pragma in &pragmas {
        if !RULE_IDS.contains(&pragma.rule.as_str()) {
            findings.push(Finding::deny(
                "pragma",
                rel_path,
                pragma.line + 1,
                format!(
                    "audit:allow names unknown rule '{}' (known: {})",
                    pragma.rule,
                    RULE_IDS.join(", ")
                ),
            ));
            continue;
        }
        if !pragma.reason_ok {
            findings.push(Finding::deny(
                "pragma",
                rel_path,
                pragma.line + 1,
                format!(
                    "audit:allow({}) carries no reason — write \
                     `audit:allow({}) — <why this line is exempt>`",
                    pragma.rule, pragma.rule
                ),
            ));
            continue;
        }
        // A valid pragma covers its own line and the next code-bearing
        // line (so a multi-line reason comment still reaches the code).
        suppressed.push((pragma.line, pragma.rule.clone()));
        if let Some(target) =
            (pragma.line + 1..text.code.len()).find(|&l| !text.code[l].trim().is_empty())
        {
            suppressed.push((target, pragma.rule.clone()));
        }
    }
    let is_suppressed =
        |line: usize, rule: &str| suppressed.iter().any(|(l, r)| *l == line && r == rule);

    let wall_clock_scoped = !WALL_CLOCK_ALLOWED_CRATES.contains(&crate_name);
    let panic_scoped = PANIC_HYGIENE_CRATES.contains(&crate_name);

    for (i, code) in text.code.iter().enumerate() {
        let line_no = i + 1;
        let in_test = all_test || tests[i];
        // Two-line window so split method chains (`.lock()\n.unwrap()`)
        // cannot dodge the token patterns; a match already present in
        // the next line alone is reported there, not here.
        let here = strip_ws(code);
        let next = text
            .code
            .get(i + 1)
            .map(|l| strip_ws(l))
            .unwrap_or_default();
        let window = format!("{here}{next}");
        let hits = |pattern: &str| {
            here.contains(pattern) || (window.contains(pattern) && !next.contains(pattern))
        };

        let lock_patterns = [".lock().unwrap()", ".lock().expect("];
        let lock_hit = lock_patterns.iter().any(|p| hits(p));
        if lock_hit && !is_suppressed(i, "lock_hygiene") {
            findings.push(Finding::deny(
                "lock_hygiene",
                rel_path,
                line_no,
                "bare .lock().unwrap()/.expect() cascades one panic into every thread \
                 sharing the mutex — use tea_core::lock_tolerant",
            ));
        }

        if wall_clock_scoped && !is_suppressed(i, "wall_clock") {
            for pattern in ["Instant::now", "SystemTime::now", "SystemTime::"] {
                if hits(pattern) {
                    findings.push(Finding::deny(
                        "wall_clock",
                        rel_path,
                        line_no,
                        format!(
                            "{pattern} in crate '{crate_name}' — wall-clock reads are \
                             quarantined to tea-serve/tea-app/tea-bench so solver, \
                             tuning and fault paths stay bit-deterministic"
                        ),
                    ));
                    break;
                }
            }
        }

        if !in_test && !is_suppressed(i, "nondeterminism") {
            for pattern in ["HashMap", "HashSet", "RandomState", "DefaultHasher"] {
                if hits(pattern) {
                    findings.push(Finding::deny(
                        "nondeterminism",
                        rel_path,
                        line_no,
                        format!(
                            "{pattern} iteration order / hash seeding varies per process — \
                             use BTreeMap/BTreeSet or a seeded splitmix64 so runs stay \
                             reproducible"
                        ),
                    ));
                    break;
                }
            }
        }

        if panic_scoped && !in_test && !lock_hit && !is_suppressed(i, "panic_hygiene") {
            let patterns = [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ];
            if let Some(pattern) = patterns.iter().find(|p| hits(p)) {
                findings.push(Finding::deny(
                    "panic_hygiene",
                    rel_path,
                    line_no,
                    format!(
                        "{pattern} in the serving/driver path — a panic here loses the \
                         job (or the queue); return a typed error instead"
                    ),
                ));
            }
        }

        let comment = &text.comments[i];
        if !is_suppressed(i, "todo_marker") {
            if let Some(marker) = ["TODO", "FIXME", "XXX"]
                .iter()
                .find(|m| comment.contains(**m))
            {
                findings.push(Finding::advise(
                    "todo_marker",
                    rel_path,
                    line_no,
                    format!("{marker} comment — file it in ROADMAP.md or resolve it"),
                ));
            }
        }
    }
    findings
}

/// The `crate_hygiene` rule: every member crate's `lib.rs` must forbid
/// `unsafe` and deny missing docs at the crate root.
pub fn check_crate_hygiene(crate_name: &str, rel_path: &str, lib_rs: &str) -> Vec<Finding> {
    let text = split_source(lib_rs);
    let mut findings = Vec::new();
    let has = |attr: &str| text.code.iter().any(|l| strip_ws(l).contains(attr));
    if !has("#![forbid(unsafe_code)]") {
        findings.push(Finding::deny(
            "crate_hygiene",
            rel_path,
            1,
            format!("crate '{crate_name}' must carry #![forbid(unsafe_code)] at the root"),
        ));
    }
    if !has("#![deny(missing_docs)]") {
        findings.push(Finding::deny(
            "crate_hygiene",
            rel_path,
            1,
            format!(
                "crate '{crate_name}' must carry #![deny(missing_docs)] at the root \
                 (every public item documented)"
            ),
        ));
    }
    findings
}

/// One workspace-root tree of the umbrella `tealeaf` package and the
/// rule scope it is audited under.
///
/// The workspace is wider than `crates/*`: the umbrella package keeps
/// its re-export façade in `src/`, its cross-crate integration suites
/// in `tests/` and its runnable documentation in `examples/`, all at
/// the top level. Each entry names the crate-name scope the rule tables
/// key on and whether the tree's `lib.rs` must carry the
/// `crate_hygiene` attributes. `vendor/` is deliberately absent from
/// the manifest: vendored third-party sources are not held to this
/// repository's contracts.
struct TreeRules {
    /// Workspace-root-relative tree to walk.
    tree: &'static str,
    /// Crate-name scope for [`WALL_CLOCK_ALLOWED_CRATES`] /
    /// [`PANIC_HYGIENE_CRATES`] lookups.
    crate_name: &'static str,
    /// Require the `crate_hygiene` root attributes on `lib.rs` here.
    hygiene: bool,
}

/// The tree → rule-set manifest for everything outside `crates/*`.
const UMBRELLA_TREES: &[TreeRules] = &[
    TreeRules {
        tree: "src",
        crate_name: "tealeaf",
        hygiene: true,
    },
    TreeRules {
        tree: "tests",
        crate_name: "tealeaf",
        hygiene: false,
    },
    TreeRules {
        tree: "examples",
        crate_name: "tealeaf",
        hygiene: false,
    },
];

/// Scans every member crate under `root/crates` (src, tests and
/// benches trees) plus the umbrella package's top-level `src/`,
/// `tests/` and `examples/` trees (per the `UMBRELLA_TREES` manifest)
/// with all
/// textual rules plus `crate_hygiene`. Vendored sources under
/// `vendor/` are exempt.
///
/// # Errors
/// I/O errors reading the tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file() && p.join("src/lib.rs").is_file())
        .collect();
    crate_dirs.sort();
    let mut findings = Vec::new();
    let scan_tree =
        |tree: &Path, crate_name: &str, hygiene: bool| -> std::io::Result<Vec<Finding>> {
            let mut out = Vec::new();
            if !tree.is_dir() {
                return Ok(out);
            }
            for file in rust_files(tree)? {
                let rel = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                let source = std::fs::read_to_string(&file)?;
                out.extend(scan_file(crate_name, &rel, &source));
                if hygiene && rel.ends_with("src/lib.rs") {
                    out.extend(check_crate_hygiene(crate_name, &rel, &source));
                }
            }
            Ok(out)
        };
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        for sub in ["src", "tests", "benches"] {
            findings.extend(scan_tree(&crate_dir.join(sub), &crate_name, true)?);
        }
    }
    for rules in UMBRELLA_TREES {
        findings.extend(scan_tree(
            &root.join(rules.tree),
            rules.crate_name,
            rules.hygiene,
        )?);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn rust_files(dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = r##"
/// Docs mentioning HashMap and Instant::now and .unwrap().
fn f() -> String {
    // a comment with panic! in it
    let s = "HashMap::new() .unwrap() Instant::now()";
    let r = r#"SystemTime::now()"#; // raw string
    format!("{s}{r}")
}
"##;
        let findings = scan_file("core", "crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn split_chains_are_still_caught() {
        let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock()\n        .unwrap()\n}\n";
        let findings = scan_file("core", "crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "lock_hygiene");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn char_literals_do_not_derail_the_lexer() {
        let src = "fn f(s: &str) -> bool {\n    s.starts_with('\"') && s.ends_with('#') // HashMap would be code after a broken lexer\n}\nuse std::collections::HashMap;\n";
        let findings = scan_file("core", "crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn doc_comments_describing_the_grammar_are_not_pragmas() {
        let src = "/// Write `audit:allow(<rule>) — <reason>` to exempt a line.\n//! The `audit:allow(wall_clock)` escape hatch.\nfn f() {}\n";
        let findings = scan_file("core", "crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn pragma_suppresses_only_its_rule() {
        let src = "\n// audit:allow(wall_clock) — timing a sanctioned deadline check\nlet t = std::time::Instant::now();\nuse std::collections::HashMap;\n";
        let findings = scan_file("core", "crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "nondeterminism");
    }

    #[test]
    fn pragma_reaches_past_its_own_comment_block() {
        let src = "// audit:allow(wall_clock) — reason line one\n// continues on a second comment line\nlet t = std::time::Instant::now();\n";
        let findings = scan_file("core", "crates/core/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn top_level_test_trees_are_location_exempt() {
        // the umbrella package's integration tests and examples sit at
        // the workspace root with no leading path component before the
        // marker — they must still count as test code by location
        for rel in [
            "tests/solver_equivalence.rs",
            "examples/quickstart.rs",
            "crates/core/tests/lane_identity.rs",
            "crates/bench/benches/kernels.rs",
        ] {
            assert!(path_is_test(rel), "{rel} should be test-scoped");
        }
        assert!(!path_is_test("crates/core/src/vector.rs"));
        assert!(!path_is_test("src/lib.rs"));
        // nondeterminism is test-exempt, so a HashMap in top-level test
        // code (outside any #[cfg(test)] module) must not be flagged
        let src = "use std::collections::HashMap;\nfn helper() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n";
        let findings = scan_file("tealeaf", "tests/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
        // ...but the same line in umbrella src/ is a violation
        let findings = scan_file("tealeaf", "src/x.rs", src);
        assert!(findings.iter().any(|f| f.rule == "nondeterminism"));
    }

    #[test]
    fn umbrella_manifest_covers_src_tests_examples_not_vendor() {
        let trees: Vec<_> = UMBRELLA_TREES.iter().map(|t| t.tree).collect();
        assert_eq!(trees, ["src", "tests", "examples"]);
        assert!(UMBRELLA_TREES.iter().all(|t| t.crate_name == "tealeaf"));
        // only the library façade is held to the root-attribute contract
        assert!(UMBRELLA_TREES
            .iter()
            .all(|t| t.hygiene == (t.tree == "src")));
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_panic_hygiene() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { real(); Some(1).unwrap(); }\n}\n";
        let findings = scan_file("serve", "crates/serve/src/lib.rs", src);
        assert!(
            findings.iter().all(|f| f.rule != "panic_hygiene"),
            "{findings:?}"
        );
    }

    #[test]
    fn crate_hygiene_requires_both_attributes() {
        let findings = check_crate_hygiene("x", "crates/x/src/lib.rs", "//! docs\n");
        assert_eq!(findings.len(), 2);
        let clean = check_crate_hygiene(
            "x",
            "crates/x/src/lib.rs",
            "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn todo_markers_are_advisory() {
        let src = "// TODO: finish this\nfn f() {}\n";
        let findings = scan_file("core", "crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].advisory);
    }
}
