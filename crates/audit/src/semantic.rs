//! Semantic audits: contracts between artefacts rather than within one
//! source line.
//!
//! * [`deck_key_audit`] — every `tl_*` deck key the parser in
//!   `crates/app/src/deck.rs` knows must appear in the README's deck-key
//!   table, and vice versa, so the documented design space and the
//!   parsed one cannot drift apart.
//! * [`bench_artifact_audit`] — every committed `BENCH_*.json` claim
//!   artefact must be strict JSON, a top-level object, and carry the
//!   shared envelope (`"bench"` naming the producing binary) so
//!   downstream tooling can consume the whole family uniformly.
//!
//! The solver-registry audit is the third semantic check; it needs a
//! *live* registry, so it lives on `tea_core::SolverRegistry::audit`
//! and is combined with these two by `tealeaf --audit` and CI.

use crate::json;
use crate::report::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Extracts the normalized `tl_*` key set from deck-parser source
/// (test modules excluded — tests exercise *invalid* keys on purpose).
/// The `tl_use_<solver>` legacy alias family normalizes to `tl_use_*`.
pub fn deck_keys_in_source(deck_rs: &str) -> BTreeSet<String> {
    let non_test = deck_rs.split("#[cfg(test)]").next().unwrap_or(deck_rs);
    tl_tokens(non_test)
}

/// Extracts the normalized `tl_*` key set from README table rows
/// (lines starting with `|` whose cells contain backticked keys).
pub fn deck_keys_in_readme(readme: &str) -> BTreeSet<String> {
    let table_text: String = readme
        .lines()
        .filter(|l| l.trim_start().starts_with('|'))
        .collect::<Vec<_>>()
        .join("\n");
    tl_tokens(&table_text)
}

fn tl_tokens(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("tl_") {
        let start = i + at;
        // keys are whole identifiers: reject matches inside longer ones
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            i = start + 3;
            continue;
        }
        let mut end = start + 3;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let token = &text[start..end];
        if token == "tl_" {
            i = end;
            continue;
        }
        if token.starts_with("tl_use_") || token == "tl_use" {
            keys.insert("tl_use_*".to_string());
        } else {
            keys.insert(token.to_string());
        }
        i = end;
    }
    keys
}

/// Audits deck-key drift between `crates/app/src/deck.rs` and the
/// README's deck-key table under `root`.
///
/// # Errors
/// I/O errors reading either file.
pub fn deck_key_audit(root: &Path) -> std::io::Result<Vec<Finding>> {
    let deck_path = "crates/app/src/deck.rs";
    let deck_rs = std::fs::read_to_string(root.join(deck_path))?;
    let readme = std::fs::read_to_string(root.join("README.md"))?;
    let parsed = deck_keys_in_source(&deck_rs);
    let documented = deck_keys_in_readme(&readme);
    let mut findings = Vec::new();
    for key in parsed.difference(&documented) {
        findings.push(Finding::deny(
            "deck_keys",
            deck_path,
            0,
            format!(
                "deck key `{key}` is parsed (or emitted) by deck.rs but missing from \
                 the README deck-key table"
            ),
        ));
    }
    for key in documented.difference(&parsed) {
        findings.push(Finding::deny(
            "deck_keys",
            "README.md",
            0,
            format!(
                "deck key `{key}` is documented in the README table but unknown to \
                 deck.rs — remove the row or wire the key"
            ),
        ));
    }
    Ok(findings)
}

/// Audits every committed `BENCH_*.json` artefact under `root`: strict
/// JSON, top-level object, a string `"bench"` field naming the
/// producing binary, and at least one measurement key beyond the
/// envelope.
///
/// # Errors
/// I/O errors listing or reading the artefacts.
pub fn bench_artifact_audit(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut artefacts: Vec<_> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    artefacts.sort();
    let mut findings = Vec::new();
    for path in artefacts {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("BENCH_?.json")
            .to_string();
        let text = std::fs::read_to_string(&path)?;
        let value = match json::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                findings.push(Finding::deny(
                    "bench_artifacts",
                    &name,
                    0,
                    format!("not strict JSON: {e}"),
                ));
                continue;
            }
        };
        let Some(entries) = value.as_object() else {
            findings.push(Finding::deny(
                "bench_artifacts",
                &name,
                0,
                "top level must be a JSON object",
            ));
            continue;
        };
        match value.get("bench").and_then(json::Value::as_str) {
            Some(bench) if !bench.trim().is_empty() => {}
            _ => findings.push(Finding::deny(
                "bench_artifacts",
                &name,
                0,
                "missing the artefact envelope: a top-level \"bench\" string naming \
                 the producing tea-bench binary",
            )),
        }
        if entries.len() < 2 {
            findings.push(Finding::deny(
                "bench_artifacts",
                &name,
                0,
                "artefact carries no measurements beyond the envelope",
            ));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_keys_normalize_the_legacy_family_and_skip_tests() {
        let src = r#"
//! tl_use_ppcg
//! tl_eps=1e-10
match key {
    "tl_solver" => {}
    "tl_max_iters" => {}
    _ => {}
}
// legacy: tl_use_<name> aliases
#[cfg(test)]
mod tests {
    const BAD: &str = "tl_bogus_key_used_to_test_errors";
}
"#;
        let keys = deck_keys_in_source(src);
        assert!(keys.contains("tl_use_*"));
        assert!(keys.contains("tl_solver"));
        assert!(keys.contains("tl_eps"));
        assert!(keys.contains("tl_max_iters"));
        assert!(!keys.iter().any(|k| k.contains("bogus")), "{keys:?}");
    }

    #[test]
    fn readme_keys_come_from_table_rows_only() {
        let readme = "\
Prose mentioning tl_never_a_table_key here.\n\
| Key | Meaning |\n\
|---|---|\n\
| `tl_solver=<name>` | picks the method |\n\
| `tl_use_<solver>` | legacy alias |\n";
        let keys = deck_keys_in_readme(readme);
        assert_eq!(
            keys.into_iter().collect::<Vec<_>>(),
            vec!["tl_solver".to_string(), "tl_use_*".to_string()]
        );
    }
}
