//! First-party static analysis for the TeaLeaf-rs workspace.
//!
//! The repository's core promises — bit-deterministic solves at any
//! worker count, wall-clock-free tuning and fault injection, panic-safe
//! poison-tolerant serving — are contracts that ordinary tests can only
//! sample. `tea-audit` enforces them *structurally*, in the style of
//! rustc's `tidy`: a fast, dependency-free line/token scanner over
//! `crates/` plus a handful of semantic audits on artefacts.
//!
//! Three layers:
//!
//! * [`scan`] — the textual linter: wall-clock quarantine,
//!   nondeterminism sources, panic hygiene, lock hygiene, crate
//!   hygiene, and the `audit:allow(<rule>) — <reason>` pragma grammar.
//! * [`semantic`] — cross-artefact audits: deck-key drift between
//!   `deck.rs` and the README table, and `BENCH_*.json` schema checks.
//!   (The third semantic audit, `SolverRegistry::audit`, lives in
//!   `tea-core` because it needs a live registry; `tealeaf --audit`
//!   combines all three.)
//! * [`report`] — findings and the machine-readable [`AuditReport`].
//!
//! Run the linter with `cargo run -p tea-audit` (add `--deny-all` to
//! also fail on advisory findings, `--json` for the report document).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod report;
pub mod scan;
pub mod semantic;

pub use report::{AuditReport, CheckOutcome, Finding};
pub use scan::{scan_file, scan_workspace, RULE_IDS};
pub use semantic::{bench_artifact_audit, deck_key_audit};
