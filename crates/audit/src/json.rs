//! A minimal strict JSON parser for artefact schema checks.
//!
//! The workspace vendors no `serde_json`, and the audit crate stays
//! dependency-free on principle, so the ~RFC 8259 subset the committed
//! `BENCH_*.json` artefacts need is implemented here directly: objects,
//! arrays, strings with escapes, numbers (including exponents), bools
//! and null. Anything else — trailing commas, comments, `NaN`,
//! unquoted keys — is a parse error, which is exactly what the schema
//! audit wants to catch.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
/// A message with the byte offset of the first violation.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number '{text}' at byte {start}"));
    }
    Ok(Value::Number(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artefact_shapes() {
        let v = parse(
            r#"{"bench": "tuning", "seed": 0, "ratio": 1.004e0,
                "decks": [{"cells": [16, 16], "eps": 1e-6, "ok": true}], "none": null}"#,
        )
        .expect("valid document");
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("tuning"));
        assert_eq!(v.get("seed"), Some(&Value::Number(0.0)));
        let decks = v.get("decks").and_then(Value::as_array).expect("array");
        assert_eq!(decks[0].get("eps"), Some(&Value::Number(1e-6)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn strings_decode_escapes() {
        let v = parse(r#""a\"b\\c\nA""#).expect("valid string");
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{'a': 1}",
            "{\"a\": 1} extra",
            "{\"a\": NaN}",
            "nullish",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
