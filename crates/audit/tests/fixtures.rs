//! Linter test coverage over the violation fixtures: each fixture
//! carries exactly the defect its name says, and the scanner flags it
//! (or, for the clean/pragma-ok/test-exempt fixtures, stays silent).

use std::path::Path;
use tea_audit::scan::check_crate_hygiene;
use tea_audit::{scan_file, Finding};

/// Loads a fixture and scans it as if it lived at
/// `crates/<crate>/src/fixture.rs`.
fn scan_fixture(name: &str, crate_name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let rel = format!("crates/{crate_name}/src/fixture.rs");
    scan_file(crate_name, &rel, &source)
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wall_clock_fixture_is_flagged_outside_the_allowlist() {
    let findings = scan_fixture("wall_clock.rs", "core");
    assert_eq!(rules(&findings), ["wall_clock"], "{findings:?}");
    // ... but the same source is sanctioned inside tea-serve.
    assert!(scan_fixture("wall_clock.rs", "serve").is_empty());
}

#[test]
fn nondeterminism_fixture_is_flagged() {
    let findings = scan_fixture("nondeterminism.rs", "core");
    assert!(!findings.is_empty());
    assert!(rules(&findings).iter().all(|r| *r == "nondeterminism"));
}

#[test]
fn panic_hygiene_fixture_is_flagged_only_in_scoped_crates() {
    let findings = scan_fixture("panic_hygiene.rs", "serve");
    assert_eq!(rules(&findings), ["panic_hygiene"], "{findings:?}");
    // tea-core handles panics via Result types + catch_unwind at the
    // boundary; the textual rule only covers serve/app.
    assert!(scan_fixture("panic_hygiene.rs", "core").is_empty());
}

#[test]
fn lock_hygiene_fixture_is_flagged_across_the_split_chain() {
    let findings = scan_fixture("lock_hygiene.rs", "core");
    assert_eq!(rules(&findings), ["lock_hygiene"], "{findings:?}");
    assert_eq!(findings[0].line, 5, "flagged on the .lock() line");
}

#[test]
fn crate_hygiene_fixture_misses_both_attributes() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/crate_hygiene.rs");
    let source = std::fs::read_to_string(path).expect("fixture readable");
    let findings = check_crate_hygiene("x", "crates/x/src/lib.rs", &source);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "crate_hygiene"));
}

#[test]
fn pragma_without_reason_is_rejected_and_suppresses_nothing() {
    let findings = scan_fixture("pragma_no_reason.rs", "core");
    let mut seen = rules(&findings);
    seen.sort_unstable();
    assert_eq!(seen, ["pragma", "wall_clock"], "{findings:?}");
}

#[test]
fn pragma_with_unknown_rule_is_rejected() {
    let findings = scan_fixture("pragma_unknown_rule.rs", "core");
    assert_eq!(rules(&findings), ["pragma"], "{findings:?}");
    assert!(findings[0].message.contains("wibble"));
}

#[test]
fn well_formed_pragma_suppresses_exactly_its_rule() {
    let findings = scan_fixture("pragma_ok.rs", "core");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn cfg_test_code_is_exempt_except_for_lock_hygiene() {
    let findings = scan_fixture("test_exempt.rs", "core");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn clean_fixture_produces_no_findings_in_any_crate() {
    for crate_name in ["core", "serve", "app", "tune", "fault"] {
        let findings = scan_fixture("clean.rs", crate_name);
        assert!(findings.is_empty(), "{crate_name}: {findings:?}");
    }
}
