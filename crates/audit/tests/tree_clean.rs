//! The committed tree must be audit-clean: no denying textual
//! findings, no deck-key drift, no malformed benchmark artefacts.
//! This is the same gate CI runs via `cargo run -p tea-audit`.

use std::path::{Path, PathBuf};
use tea_audit::{bench_artifact_audit, deck_key_audit, scan_workspace};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn committed_tree_has_no_denying_findings() {
    let findings = scan_workspace(&workspace_root()).expect("workspace scans");
    let denied: Vec<_> = findings.iter().filter(|f| !f.advisory).collect();
    assert!(
        denied.is_empty(),
        "committed tree violates its own contracts:\n{}",
        denied
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_tree_has_no_advisory_findings_either() {
    // --deny-all is the CI posture; keep the tree free of to-do markers
    // (park follow-ups in ROADMAP.md instead).
    let findings = scan_workspace(&workspace_root()).expect("workspace scans");
    assert!(
        findings.is_empty(),
        "advisory findings present:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn deck_keys_match_the_readme_table() {
    let findings = deck_key_audit(&workspace_root()).expect("audit runs");
    assert!(
        findings.is_empty(),
        "deck-key drift:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn bench_artifacts_carry_the_envelope() {
    let findings = bench_artifact_audit(&workspace_root()).expect("audit runs");
    assert!(
        findings.is_empty(),
        "malformed benchmark artefacts:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
