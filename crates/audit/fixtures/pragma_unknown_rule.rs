// Fixture: a pragma naming a rule the linter does not know.
// audit:allow(wibble) — this rule does not exist
pub fn noop() {}
