// Fixture: hash-order-dependent container outside a test module.
use std::collections::HashMap;

pub fn tally(keys: &[u64]) -> HashMap<u64, usize> {
    let mut map = HashMap::new();
    for &k in keys {
        *map.entry(k).or_insert(0) += 1;
    }
    map
}
