// Fixture: a well-formed pragma suppresses exactly its rule on the
// next code-bearing line.
pub fn stamp() -> std::time::Instant {
    // audit:allow(wall_clock) — fixture demonstrating a sanctioned exemption
    std::time::Instant::now()
}
