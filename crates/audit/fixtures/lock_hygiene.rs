// Fixture: bare poisoning lock acquisition split across two lines.
use std::sync::Mutex;

pub fn read(m: &Mutex<u64>) -> u64 {
    *m.lock()
        .unwrap()
}
