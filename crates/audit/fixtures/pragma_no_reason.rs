// Fixture: a pragma with no reason must itself be flagged, and must
// not suppress the violation it points at.
// audit:allow(wall_clock)
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
