// Fixture: wall-clock read in a quarantined crate (scanned as tea-core).
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
