//! Fixture: a crate root missing #![forbid(unsafe_code)] and
//! #![deny(missing_docs)].

/// Documented, but the crate-level lints are absent.
pub fn noop() {}
