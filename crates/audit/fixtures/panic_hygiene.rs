// Fixture: panicking call in the serving path (scanned as tea-serve).
pub fn first(jobs: &[u32]) -> u32 {
    *jobs.first().unwrap()
}
