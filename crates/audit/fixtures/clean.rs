// Fixture: violation-free code, including decoys inside strings and
// comments that a naive scanner would flag.
use std::collections::BTreeMap;

/// Mentions `HashMap`, `.unwrap()` and `Instant::now` in docs only.
pub fn describe() -> String {
    let mut notes = BTreeMap::new();
    notes.insert("pattern", "HashMap::new().lock().unwrap() Instant::now()");
    format!("{notes:?}")
}
