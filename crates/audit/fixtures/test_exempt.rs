// Fixture: #[cfg(test)] modules are exempt from panic hygiene and
// nondeterminism (but not lock hygiene).
pub fn real() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn unwraps_freely() {
        let mut seen = HashSet::new();
        seen.insert(super::real());
        assert_eq!(seen.iter().next().copied().unwrap(), 7);
    }
}
