//! # tea-bench — the experiment harness
//!
//! One binary per table/figure of the CLUSTER'17 evaluation (see
//! DESIGN.md §5 for the index) plus criterion micro-benchmarks. This
//! library holds the shared machinery: measuring solver traces from real
//! runs, fitting the iteration-growth law, and extrapolating protocols
//! to the paper's 4000² mesh (EXPERIMENTS.md documents the method and
//! its honesty bounds).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::path::PathBuf;
use tea_amg::MgTrace;
use tea_app::{crooked_pipe_deck, run_serial, Deck};
use tea_core::{PreconKind, SolveTrace};

/// Common command-line arguments of the figure binaries.
#[derive(Debug, Clone)]
pub struct FigArgs {
    /// Measurement mesh size (traces are measured at this size and two
    /// smaller sizes for the growth-law fit).
    pub cells: usize,
    /// Time steps per measurement run.
    pub steps: u64,
    /// Target mesh size the protocol is extrapolated to (the paper's
    /// 4000 unless overridden).
    pub target_cells: usize,
    /// Output directory for CSV artefacts.
    pub out_dir: PathBuf,
}

impl FigArgs {
    /// Parses `--cells N --steps N --target N --out DIR` with the given
    /// defaults; `--help` prints usage and exits.
    pub fn parse(bin: &str, default_cells: usize, default_steps: u64) -> FigArgs {
        let mut args = FigArgs {
            cells: default_cells,
            steps: default_steps,
            target_cells: 4000,
            out_dir: PathBuf::from("experiments"),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = || it.next().unwrap_or_default();
            match flag.as_str() {
                "--cells" => args.cells = value().parse().expect("--cells"),
                "--steps" => args.steps = value().parse().expect("--steps"),
                "--target" => args.target_cells = value().parse().expect("--target"),
                "--out" => args.out_dir = PathBuf::from(value()),
                "--help" | "-h" => {
                    println!(
                        "{bin}: regenerates a CLUSTER'17 TeaLeaf artefact\n\
                         --cells N   measurement mesh (default {default_cells})\n\
                         --steps N   steps per measurement (default {default_steps})\n\
                         --target N  extrapolation mesh (default 4000)\n\
                         --out DIR   CSV output directory (default ./experiments)"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        std::fs::create_dir_all(&args.out_dir).expect("create output dir");
        args
    }
}

/// A solver configuration measured for the scaling figures.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Legend label (paper style, e.g. `"PPCG - 16"`).
    pub label: String,
    /// Registry solver name (see `tea_app::solver_registry`).
    pub solver: String,
    /// Matrix-powers depth (PPCG only).
    pub depth: usize,
    /// Preconditioner.
    pub precon: PreconKind,
}

impl SolverConfig {
    /// Plain CG with depth-1 halos — the paper's `CG - 1`.
    pub fn cg() -> Self {
        SolverConfig {
            label: "CG - 1".into(),
            solver: "cg".into(),
            depth: 1,
            precon: PreconKind::None,
        }
    }

    /// `PPCG - depth` (16 inner steps, as in the figures).
    pub fn ppcg(depth: usize) -> Self {
        SolverConfig {
            label: format!("PPCG - {depth}"),
            solver: "ppcg".into(),
            depth,
            precon: PreconKind::None,
        }
    }

    /// The BoomerAMG-class baseline.
    pub fn amg() -> Self {
        SolverConfig {
            label: "BoomerAMG".into(),
            solver: "amg".into(),
            depth: 1,
            precon: PreconKind::None,
        }
    }

    fn deck(&self, cells: usize, steps: u64) -> Deck {
        let mut deck = crooked_pipe_deck(cells, self.solver.clone());
        deck.control.end_step = steps;
        deck.control.summary_frequency = 0;
        deck.control.precon = self.precon;
        deck.control.ppcg_halo_depth = self.depth;
        deck.control.ppcg_inner_steps = 16;
        deck
    }
}

/// A measured protocol: the accumulated trace of a real run plus its
/// iteration count.
#[derive(Debug)]
pub struct Measurement {
    /// Mesh size of the run.
    pub cells: usize,
    /// Accumulated solver trace.
    pub trace: SolveTrace,
    /// Accumulated multigrid trace (AMG runs).
    pub mg: Option<MgTrace>,
    /// Total outer iterations over the run.
    pub iterations: u64,
}

/// Runs a configuration serially and returns its protocol.
pub fn measure(config: &SolverConfig, cells: usize, steps: u64) -> Measurement {
    let deck = config.deck(cells, steps);
    let out = run_serial(&deck).expect("deck runs");
    assert!(
        out.steps.iter().all(|s| s.converged),
        "{} failed to converge at {cells}^2",
        config.label
    );
    Measurement {
        cells,
        trace: out.trace,
        mg: out.mg_trace,
        iterations: out.steps.iter().map(|s| s.iterations).sum(),
    }
}

/// Fits `iters = a · n^p` through measured `(n, iters)` points by
/// log-log least squares and returns `(a, p)`.
pub fn fit_power_law(points: &[(usize, u64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two sizes to fit");
    let xs: Vec<f64> = points.iter().map(|&(n, _)| (n as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, i)| (i as f64).ln()).collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let p = if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let a = ((sy - p * sx) / n).exp();
    (a, p)
}

/// Chebyshev polynomial of the first kind at `x > 1`:
/// `T_m(x) = cosh(m · acosh x)`.
pub fn chebyshev_t(m: usize, x: f64) -> f64 {
    assert!(x >= 1.0);
    (m as f64 * x.acosh()).cosh()
}

/// The paper's Eq. 4-5: condition number of the `m`-step Chebyshev
/// polynomially preconditioned operator given `κ(A)`.
pub fn kappa_pcg(kappa: f64, m: usize) -> f64 {
    assert!(kappa > 1.0);
    let x = (kappa + 1.0) / (kappa - 1.0);
    let eps = 1.0 / chebyshev_t(m, x);
    (1.0 + eps) / (1.0 - eps)
}

/// Measures `κ(A)` at a mesh size via CG-Lanczos on the crooked pipe.
pub fn measure_kappa(cells: usize) -> f64 {
    use tea_comms::{HaloLayout, SerialComm};
    use tea_core::{
        cg_solve_recording, crooked_pipe_system, estimate_from_cg, Preconditioner, SolveOpts, Tile,
        Workspace,
    };
    use tea_mesh::Decomposition2D;
    let n = cells;
    let (op, b) = crooked_pipe_system(n, 0.04, 1);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(n, n, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile = Tile::new(&op, &layout, &comm);
    let mut ws = Workspace::new(n, n, 1);
    let mut u = b.clone();
    let (_, coeffs) = cg_solve_recording(
        &tile,
        &mut u,
        &b,
        &Preconditioner::Identity,
        &mut ws,
        SolveOpts::with_eps(1e-12),
        80,
    );
    let (al, be) = coeffs.for_lanczos();
    estimate_from_cg(al, be, 0.0).condition_number()
}

/// Extrapolation record: what was measured and how it was scaled.
#[derive(Debug)]
pub struct Extrapolation {
    /// Measured protocol at `cells`.
    pub measurement: Measurement,
    /// Measured condition number at the measurement mesh.
    pub kappa_measured: f64,
    /// Theory-scaled condition number at the target mesh (`κ ∝ n²`
    /// because `rx = Δt/Δx²`).
    pub kappa_target: f64,
    /// Iteration scale factor applied to the trace.
    pub factor: f64,
}

/// Extrapolates a Krylov config's measured trace to `target` cells per
/// side using the paper's own convergence theory (Eqs. 4-7):
///
/// * `κ` scales as `(target/measured)²` (the face coefficients carry
///   `Δt/Δx²`);
/// * CG/Chebyshev iterations scale as `√(κ_t/κ_m)` (Eq. 6);
/// * CPPCG outer iterations scale as `√(κpcg_t/κpcg_m)` with `κpcg`
///   from Eqs. 4-5 — which reproduces O'Leary's invariant that the
///   *total* matrix-vector work cannot drop below plain CG's.
pub fn extrapolate_to(
    config: &SolverConfig,
    base_cells: usize,
    steps: u64,
    target: usize,
) -> (SolveTrace, Extrapolation) {
    let measurement = measure(config, base_cells, steps);
    let kappa_measured = measure_kappa(base_cells);
    let ratio = target as f64 / base_cells as f64;
    let kappa_target = kappa_measured * ratio * ratio;
    let factor = if config.solver == "ppcg" {
        let m = 16; // inner steps used by the figure configs
        (kappa_pcg(kappa_target, m) / kappa_pcg(kappa_measured, m)).sqrt()
    } else {
        (kappa_target / kappa_measured).sqrt()
    };
    let mut trace = measurement.trace.scaled(factor);
    trace.solver = config.label.clone();
    (
        trace,
        Extrapolation {
            measurement,
            kappa_measured,
            kappa_target,
            factor,
        },
    )
}

/// Extrapolates an AMG measurement: iteration growth fitted from three
/// sizes (multigrid is near mesh-independent, so the fit is safe); level
/// shapes rebuilt for the target mesh; per-level sweeps and setup cells
/// scaled consistently.
pub fn extrapolate_amg_to(
    base_cells: usize,
    steps: u64,
    target: usize,
) -> (MgTrace, Vec<Measurement>, f64) {
    let config = SolverConfig::amg();
    let sizes = [base_cells / 4 * 2, base_cells / 4 * 3, base_cells];
    let measurements: Vec<Measurement> = sizes
        .iter()
        .map(|&n| measure(&config, n.max(16), steps))
        .collect();
    let points: Vec<(usize, u64)> = measurements
        .iter()
        .map(|m| (m.cells, m.iterations.max(1)))
        .collect();
    let (a, p) = fit_power_law(&points);
    let predicted = a * (target as f64).powf(p);
    let last = measurements.last().unwrap();
    let factor = predicted / last.iterations.max(1) as f64;
    let mg_last = last.mg.as_ref().expect("AMG runs carry traces");

    // rebuild the level geometry for the target mesh
    let mut shapes = Vec::new();
    let (mut nx, mut ny) = (target, target);
    loop {
        shapes.push((nx, ny));
        if nx * ny <= tea_amg::COARSEST_CELLS || nx < 4 || ny < 4 {
            break;
        }
        nx = nx.div_ceil(2);
        ny = ny.div_ceil(2);
    }
    let total_setup: usize = shapes.iter().map(|&(a, b)| a * b).sum();

    // sweeps per level scale with v-cycle count; extra (deeper) levels of
    // the target hierarchy inherit the measured per-cycle cadence
    let vcycles = (mg_last.vcycles as f64 * factor).round() as u64;
    let per_cycle: f64 = if mg_last.vcycles > 0 {
        mg_last.total_level_sweeps() as f64
            / (mg_last.vcycles as f64 * mg_last.level_shapes.len() as f64)
    } else {
        6.0
    };
    let mut mg = MgTrace {
        outer: {
            let mut t = mg_last.outer.scaled(factor);
            t.solver = config.label.clone();
            t
        },
        level_shapes: shapes.clone(),
        vcycles,
        coarse_solves: vcycles,
        setup_cells: (total_setup as u64) * (steps.max(1)),
        ..Default::default()
    };
    for l in 0..shapes.len() {
        mg.level_sweeps
            .insert(l as u32, (per_cycle * vcycles as f64).round() as u64);
    }
    (mg, measurements, p)
}

/// Formats a paper-style scaling table row set to stdout.
pub fn print_series_table(node_header: &str, series: &[tea_perfmodel::ScalingSeries]) {
    print!("{node_header:>8}");
    for s in series {
        print!(" {:>14}", s.label);
    }
    println!();
    let n = series[0].points.len();
    for i in 0..n {
        print!("{:>8}", series[0].points[i].nodes);
        for s in series {
            print!(" {:>14.5}", s.points[i].total());
        }
        println!();
    }
}

/// Writes the series as CSV into the output directory.
pub fn write_series(
    args: &FigArgs,
    name: &str,
    series: &[tea_perfmodel::ScalingSeries],
) -> std::path::PathBuf {
    let xs: Vec<f64> = series[0].points.iter().map(|p| p.nodes as f64).collect();
    let cols: Vec<(String, Vec<f64>)> = series
        .iter()
        .map(|s| {
            (
                s.label.clone(),
                s.points.iter().map(|p| p.total()).collect(),
            )
        })
        .collect();
    let path = args.out_dir.join(name);
    tea_app::write_series_csv(&path, "nodes", &xs, &cols).expect("write series CSV");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_fit_recovers_exponents() {
        // perfect power law
        let pts: Vec<(usize, u64)> = [32usize, 64, 128]
            .iter()
            .map(|&n| (n, (3.0 * (n as f64).powf(1.0)) as u64))
            .collect();
        let (a, p) = fit_power_law(&pts);
        assert!((p - 1.0).abs() < 0.05, "exponent {p}");
        assert!((a - 3.0).abs() < 0.5, "coefficient {a}");
        // constant (mesh-independent, AMG-style)
        let flat: Vec<(usize, u64)> = vec![(32, 40), (64, 40), (128, 40)];
        let (_, p0) = fit_power_law(&flat);
        assert!(p0.abs() < 0.01);
    }

    #[test]
    fn measure_produces_consistent_protocol() {
        let m = measure(&SolverConfig::cg(), 24, 1);
        assert_eq!(m.cells, 24);
        assert!(m.iterations > 0);
        assert_eq!(m.trace.outer_iterations, m.iterations);
        assert!(m.mg.is_none());
        let amg = measure(&SolverConfig::amg(), 24, 1);
        assert!(amg.mg.is_some());
    }

    #[test]
    fn extrapolation_scales_iterations_up() {
        let (trace, ext) = extrapolate_to(&SolverConfig::cg(), 48, 1, 512);
        // CG factor is exactly the mesh ratio (κ ∝ n², iters ∝ √κ)
        assert!((ext.factor - 512.0 / 48.0).abs() < 1e-9);
        assert!(trace.outer_iterations > ext.measurement.iterations);
        assert!(ext.kappa_target > ext.kappa_measured);
    }

    #[test]
    fn ppcg_extrapolation_preserves_olearys_invariant() {
        // the total matvec work of CPPCG must not drop below CG's at the
        // same κ: outer(m) · m >= total/(1 + o(1))
        let kappa = 100_000.0;
        for m in [4usize, 8, 16] {
            let outer_factor = kappa_pcg(kappa, m).sqrt();
            let total_factor = kappa.sqrt();
            let work_ratio = outer_factor * m as f64 / total_factor;
            assert!(
                work_ratio > 0.9 && work_ratio < 3.0,
                "m = {m}: CPPCG work ratio {work_ratio} violates O'Leary"
            );
        }
    }

    #[test]
    fn kappa_pcg_collapses_small_kappa() {
        // when m-step Chebyshev nearly solves the system, κpcg -> 1
        assert!(kappa_pcg(10.0, 16) < 1.01);
        // and grows towards κ as m -> 1
        assert!(kappa_pcg(10_000.0, 1) > kappa_pcg(10_000.0, 16));
    }

    #[test]
    fn chebyshev_t_matches_recurrence() {
        // T_3(x) = 4x^3 - 3x
        let x = 1.7f64;
        let want = 4.0 * x * x * x - 3.0 * x;
        assert!((chebyshev_t(3, x) - want).abs() < 1e-10);
    }

    #[test]
    fn config_labels() {
        assert_eq!(SolverConfig::cg().label, "CG - 1");
        assert_eq!(SolverConfig::ppcg(16).label, "PPCG - 16");
        assert_eq!(SolverConfig::amg().label, "BoomerAMG");
    }
}
