//! §IV.C.1 claim — "This block Jacobi preconditioner typically reduces
//! the condition number of the matrix by around 40%."
//!
//! Measures κ(A) and κ(M⁻¹A) on the crooked pipe via CG-Lanczos
//! estimation, for the paper's 4×1 strips and an ablation over strip
//! lengths.
//!
//! `cargo run --release -p tea-bench --bin claim_condition [-- --cells N]`

use tea_bench::FigArgs;
use tea_comms::{HaloLayout, SerialComm};
use tea_core::{
    cg_solve_recording, estimate_from_cg, BlockJacobi, PreconKind, Preconditioner, SolveOpts, Tile,
    TileBounds, TileOperator, Workspace,
};
use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D};

fn kappa(op: &TileOperator, b: &Field2D, precon: &Preconditioner, n: usize) -> f64 {
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(n, n, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile = Tile::new(op, &layout, &comm);
    let mut ws = Workspace::new(n, n, 1);
    let mut u = b.clone();
    let (_, coeffs) = cg_solve_recording(
        &tile,
        &mut u,
        b,
        precon,
        &mut ws,
        SolveOpts::with_eps(1e-12),
        100,
    );
    let (al, be) = coeffs.for_lanczos();
    estimate_from_cg(al, be, 0.0).condition_number()
}

fn main() {
    let args = FigArgs::parse("claim_condition", 96, 1);
    let n = args.cells;
    let problem = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, problem.extent);
    let mut density = Field2D::new(n, n, 1);
    let mut energy = Field2D::new(n, n, 1);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, 1);
    let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
    let mut b = Field2D::new(n, n, 1);
    for k in 0..n as isize {
        for j in 0..n as isize {
            b.set(j, k, density.at(j, k) * energy.at(j, k));
        }
    }

    println!("§IV.C.1: block-Jacobi condition-number cut, crooked pipe {n}x{n}\n");
    let k_plain = kappa(&op, &b, &Preconditioner::Identity, n);
    println!("{:<24} κ = {k_plain:10.3}", "A (no preconditioner)");

    let diag = Preconditioner::setup(PreconKind::Diagonal, &op, 0);
    let k_diag = kappa(&op, &b, &diag, n);
    println!(
        "{:<24} κ = {k_diag:10.3}   ({:+5.1}%)",
        "point Jacobi",
        100.0 * (k_diag / k_plain - 1.0)
    );

    println!("\nstrip-length ablation (paper uses 4):");
    let mut cut4 = 0.0;
    for strip in [2usize, 4, 8, 16] {
        let bj = Preconditioner::BlockJacobi(BlockJacobi::setup(&op, strip));
        let k_bj = kappa(&op, &b, &bj, n);
        let cut = 100.0 * (1.0 - k_bj / k_plain);
        if strip == 4 {
            cut4 = cut;
        }
        println!("  {strip:>2}x1 strips            κ = {k_bj:10.3}   (cut {cut:5.1}%)");
    }

    println!("\npaper claim: ~40% reduction with 4x1 strips; measured: {cut4:.1}%");
    assert!(
        (25.0..70.0).contains(&cut4),
        "4x1 block-Jacobi cut {cut4:.1}% is out of the plausible band around the paper's 40%"
    );
}
