//! Figure 4 — convergence of the average mesh temperature as the mesh is
//! refined (the study motivating the fixed 4000² strong-scaling mesh).
//!
//! Sweeps mesh resolutions at a fixed physical end time and reports the
//! volume-averaged temperature each converges to. The paper's plateau
//! (no interesting change beyond 4000²) appears here as successive
//! differences shrinking as the mesh refines.
//!
//! `cargo run --release -p tea-bench --bin fig4 [-- --steps N]`

use tea_app::{crooked_pipe_deck, run_serial, write_series_csv};
use tea_bench::FigArgs;

fn main() {
    let args = FigArgs::parse("fig4", 192, 25);
    // resolutions sweep up to the measurement budget; the paper sweeps
    // up to 5000^2 on real hardware
    let sizes: Vec<usize> = [24, 32, 48, 64, 96, 128, 192, 256, 384]
        .into_iter()
        .filter(|&n| n <= args.cells * 2)
        .collect();

    println!(
        "Fig. 4: average mesh temperature at t = {:.2} vs mesh size",
        args.steps as f64 * 0.04
    );
    println!(
        "{:>10} {:>10} {:>18} {:>14}",
        "mesh", "iters/step", "avg temperature", "Δ from prev"
    );

    let mut temps = Vec::new();
    let mut prev: Option<f64> = None;
    for &n in &sizes {
        let mut deck = crooked_pipe_deck(n, "ppcg");
        deck.control.end_step = args.steps;
        deck.control.ppcg_halo_depth = 4;
        deck.control.summary_frequency = 0;
        let out = run_serial(&deck).expect("deck runs");
        let t = out.final_summary.average_temperature();
        let iters = out.steps.iter().map(|s| s.iterations).sum::<u64>() / args.steps.max(1);
        let delta = prev.map(|p| (t - p).abs()).unwrap_or(f64::NAN);
        println!("{:>7}^2  {:>10} {:>18.10} {:>14.3e}", n, iters, t, delta);
        temps.push(t);
        prev = Some(t);
    }

    // mesh convergence: late deltas must be far smaller than early ones
    let early = (temps[1] - temps[0]).abs();
    let late = (temps[temps.len() - 1] - temps[temps.len() - 2]).abs();
    println!(
        "\nrefinement deltas: first {early:.3e} -> last {late:.3e} ({}x reduction)",
        (early / late.max(1e-300)) as u64
    );
    assert!(
        late < early,
        "average temperature must converge under refinement"
    );

    let xs: Vec<f64> = sizes.iter().map(|&n| (n * n) as f64).collect();
    let path = args.out_dir.join("fig4_mesh_convergence.csv");
    write_series_csv(&path, "cells", &xs, &[("avg_temperature".into(), temps)]).expect("write csv");
    println!("wrote {}", path.display());
}
