//! §VI's weak-scaling argument, quantified.
//!
//! > "Weak scaling performance would also be more difficult to
//! > characterize: the nature of the algorithm means that increasing the
//! > mesh size also increases the condition number, the number of
//! > iterations required to converge, and hence the time to solution."
//!
//! This binary measures exactly that chain on real solves: mesh size ↑ →
//! κ ↑ → iterations ↑, so constant-work-per-node (weak) scaling cannot
//! hold constant time. It is the justification for the paper's (and this
//! reproduction's) strong-scaling-only evaluation.
//!
//! `cargo run --release -p tea-bench --bin claim_weak_scaling`

use tea_bench::{fit_power_law, measure, measure_kappa, FigArgs, SolverConfig};

fn main() {
    let args = FigArgs::parse("claim_weak_scaling", 192, 1);
    let sizes: Vec<usize> = [32usize, 48, 64, 96, 128, 192]
        .into_iter()
        .filter(|&n| n <= args.cells)
        .collect();

    println!("§VI: why TeaLeaf strong-scales — the κ/iteration growth chain\n");
    println!(
        "{:>8} {:>12} {:>12} {:>16} {:>16}",
        "mesh", "κ(A)", "CG iters", "CG sweeps", "iters/√κ"
    );

    let mut kappa_points = Vec::new();
    let mut iter_points = Vec::new();
    for &n in &sizes {
        let kappa = measure_kappa(n);
        let m = measure(&SolverConfig::cg(), n, args.steps);
        println!(
            "{:>5}^2 {:>12.1} {:>12} {:>16} {:>16.2}",
            n,
            kappa,
            m.iterations,
            m.trace.spmv.total(),
            m.iterations as f64 / kappa.sqrt()
        );
        kappa_points.push((n, kappa.round() as u64));
        iter_points.push((n, m.iterations));
    }

    let (_, p_kappa) = fit_power_law(&kappa_points);
    let (_, p_iter) = fit_power_law(&iter_points);
    println!("\nfitted growth exponents (vs cells-per-side n):");
    println!("  κ(A)      ~ n^{p_kappa:.2}   (theory: 2, from rx = Δt/Δx²)");
    println!("  CG iters  ~ n^{p_iter:.2}   (theory: 1, from iters ∝ √κ)");
    println!(
        "\nConsequence: doubling the mesh per node in a weak-scaling sweep\n\
         roughly doubles the iteration count — time per step cannot stay\n\
         flat, which is the paper's §VI justification for strong scaling."
    );

    assert!(
        p_kappa > 1.4,
        "κ must grow super-linearly with n, got exponent {p_kappa:.2}"
    );
    assert!(
        p_iter > 0.5,
        "iterations must grow with n, got exponent {p_iter:.2}"
    );
    // the ratio iters/√κ should be roughly flat (CG theory)
    let first = iter_points[0].1 as f64 / (kappa_points[0].1 as f64).sqrt();
    let last =
        iter_points.last().unwrap().1 as f64 / (kappa_points.last().unwrap().1 as f64).sqrt();
    let drift = (last / first - 1.0).abs();
    println!(
        "iters/√κ ratio drift across the sweep: {:.0}% (CG theory says ~constant)",
        100.0 * drift
    );
}
