//! Figure 7 — MPI and hybrid strong scaling on Spruce (CPU), 1–1,024
//! nodes: `CG - 1`, `PPCG - 1` and the BoomerAMG-class baseline, each in
//! flat-MPI and hybrid (MPI+OpenMP) run modes.
//!
//! The paper's observations this regenerates: BoomerAMG is fastest at
//! low node counts but peaks early (paper: 32 nodes); TeaLeaf's CPPCG
//! keeps improving to ~512 nodes and wins at scale.
//!
//! `cargo run --release -p tea-bench --bin fig7 [-- --cells N --steps N --target N]`

use tea_bench::{
    extrapolate_amg_to, extrapolate_to, print_series_table, write_series, FigArgs, SolverConfig,
};
use tea_perfmodel::{spruce_hybrid, spruce_mpi, KernelBytes, ScalingSeries};

fn main() {
    let args = FigArgs::parse("fig7", 96, 2);
    let global = (args.target_cells, args.target_cells);
    println!(
        "Fig. 7: strong scaling on Spruce — {}^2 mesh (measured at {}^2, extrapolated)\n",
        args.target_cells, args.cells
    );

    // measure the three solver protocols once
    let (cg_trace, cg_ext) = extrapolate_to(
        &SolverConfig::cg(),
        args.cells,
        args.steps,
        args.target_cells,
    );
    let (pp_trace, pp_ext) = extrapolate_to(
        &SolverConfig::ppcg(1),
        args.cells,
        args.steps,
        args.target_cells,
    );
    let (amg_trace, _, p_amg) = extrapolate_amg_to(args.cells, args.steps, args.target_cells);
    eprintln!(
        "  iteration scale factors: CG x{:.1}, PPCG x{:.1}; BoomerAMG growth exponent {p_amg:.2} \
         (multigrid should be near mesh-independent)",
        cg_ext.factor, pp_ext.factor
    );

    let mut series = Vec::new();
    for machine in [spruce_hybrid(), spruce_mpi()] {
        let mode = if machine.ranks_per_node == 2 {
            "Hybrid"
        } else {
            "MPI"
        };
        series.push(ScalingSeries::sweep_amg(
            format!("BoomerAMG ({mode})"),
            &machine,
            &amg_trace,
            global,
            KernelBytes::default(),
        ));
        series.push(ScalingSeries::sweep(
            format!("CG - 1 ({mode})"),
            &machine,
            &cg_trace,
            global,
            KernelBytes::default(),
        ));
        series.push(ScalingSeries::sweep(
            format!("PPCG - 1 ({mode})"),
            &machine,
            &pp_trace,
            global,
            KernelBytes::default(),
        ));
    }

    println!("\ntime to solution (s):");
    print_series_table("nodes", &series);

    println!("\nshape checks against the paper:");
    for s in &series {
        println!("  {:<22} fastest at {:>5} nodes", s.label, s.best_nodes());
    }

    // BoomerAMG wins small, CPPCG wins big (paper: crossover ~128 nodes
    // flat-MPI, 1-8 hybrid; 2x advantage at 512; baseline peaks at 32)
    for (amg_s, ppcg_s, mode) in [
        (&series[0], &series[2], "Hybrid"),
        (&series[3], &series[5], "MPI"),
    ] {
        let t_amg_1 = amg_s.time_at(1).unwrap();
        let t_ppcg_1 = ppcg_s.time_at(1).unwrap();
        let t_amg_512 = amg_s.time_at(512).unwrap();
        let t_ppcg_512 = ppcg_s.time_at(512).unwrap();
        println!(
            "\n  [{mode}] at 1 node:    BoomerAMG {t_amg_1:.3}s vs PPCG-1 {t_ppcg_1:.3}s \
             (baseline wins: {})",
            t_amg_1 < t_ppcg_1
        );
        println!(
            "  [{mode}] at 512 nodes: BoomerAMG {t_amg_512:.3}s vs PPCG-1 {t_ppcg_512:.3}s \
             ({:.1}x; paper: 2x at 512)",
            t_amg_512 / t_ppcg_512
        );
        assert!(
            t_amg_1 < t_ppcg_1,
            "[{mode}] the baseline must win at one node"
        );
        assert!(
            t_ppcg_512 < t_amg_512,
            "[{mode}] CPPCG must win at 512 nodes (paper: 2x)"
        );
        assert!(
            amg_s.best_nodes() < ppcg_s.best_nodes(),
            "[{mode}] BoomerAMG must peak earlier than CPPCG \
             (paper: 32 vs 512)"
        );
    }

    let path = write_series(&args, "fig7_spruce.csv", &series);
    println!("\nwrote {}", path.display());
}
