//! Table I — test setup specifications.
//!
//! Prints the modelled machine inventory (the reproduction's analogue of
//! the paper's driver/compiler column is the model calibration).
//!
//! `cargo run --release -p tea-bench --bin table1`

use tea_perfmodel::all_machines;

fn main() {
    println!("TABLE I: TEST SETUP SPECIFICATIONS (modelled)\n");
    println!(
        "{:<16} {:<14} {:<17} {:>12} {:>10}",
        "System", "Compute device", "Interconnect", "Total cores", "Max nodes"
    );
    for m in all_machines() {
        println!(
            "{:<16} {:<14} {:<17} {:>12} {:>10}",
            m.name, m.node.device, m.net.interconnect, m.total_cores, m.max_nodes
        );
    }
    println!("\nModel calibration (per node / link):");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "System", "mem BW GB/s", "sweep µs", "net α µs", "net GB/s", "tree-hop µs"
    );
    for m in all_machines() {
        println!(
            "{:<16} {:>12.0} {:>12.1} {:>12.1} {:>12.0} {:>12.1}",
            m.name,
            m.node.mem_bandwidth / 1e9,
            m.node.sweep_overhead * 1e6,
            m.net.latency * 1e6,
            m.net.bandwidth / 1e9,
            m.net.reduction_hop * 1e6,
        );
    }
    println!("\n(see crates/perfmodel/src/machines.rs for sources and rationale)");
}
