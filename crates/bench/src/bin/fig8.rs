//! Figure 8 — strong-scaling efficiency of the best configuration on
//! each system: Spruce `PPCG - 1` (MPI), Piz Daint `PPCG - 16` (CUDA),
//! Titan `PPCG - 16` (CUDA).
//!
//! Efficiency is `E(P) = T(1) / (P · T(P))`. The paper's headline: the
//! CPU machine holds super-linear efficiency (cache effects) until ~512
//! nodes, while the GPU machines decay monotonically, Piz Daint above
//! Titan throughout.
//!
//! `cargo run --release -p tea-bench --bin fig8 [-- --cells N --steps N --target N]`

use tea_app::write_series_csv;
use tea_bench::{extrapolate_to, FigArgs, SolverConfig};
use tea_perfmodel::{node_counts, piz_daint, spruce_mpi, titan, KernelBytes, ScalingSeries};

fn main() {
    let args = FigArgs::parse("fig8", 128, 2);
    let global = (args.target_cells, args.target_cells);
    println!(
        "Fig. 8: scaling efficiency across systems — {}^2 mesh\n",
        args.target_cells
    );

    let (pp1, _) = extrapolate_to(
        &SolverConfig::ppcg(1),
        args.cells,
        args.steps,
        args.target_cells,
    );
    let (pp16, _) = extrapolate_to(
        &SolverConfig::ppcg(16),
        args.cells,
        args.steps,
        args.target_cells,
    );

    let series = [
        ScalingSeries::sweep(
            "Spruce - PPCG - 1 (MPI)",
            &spruce_mpi(),
            &pp1,
            global,
            KernelBytes::default(),
        ),
        ScalingSeries::sweep(
            "Piz Daint - PPCG - 16 (CUDA)",
            &piz_daint(),
            &pp16,
            global,
            KernelBytes::default(),
        ),
        ScalingSeries::sweep(
            "Titan - PPCG - 16 (CUDA)",
            &titan(),
            &pp16,
            global,
            KernelBytes::default(),
        ),
    ];

    let effs: Vec<(String, Vec<(usize, f64)>)> = series
        .iter()
        .map(|s| (s.label.clone(), s.efficiency()))
        .collect();

    println!(
        "{:>8} {:>26} {:>30} {:>26}",
        "nodes", &effs[0].0, &effs[1].0, &effs[2].0
    );
    let max_len = effs.iter().map(|(_, e)| e.len()).max().unwrap();
    for i in 0..max_len {
        let nodes = effs
            .iter()
            .filter_map(|(_, e)| e.get(i).map(|&(n, _)| n))
            .max()
            .unwrap();
        print!("{nodes:>8}");
        for (_, e) in &effs {
            match e.get(i) {
                Some(&(_, v)) => print!(" {v:>26.3}"),
                None => print!(" {:>26}", "-"),
            }
        }
        println!();
    }

    // shape checks
    let spruce_eff = &effs[0].1;
    let daint_eff = &effs[1].1;
    let titan_eff = &effs[2].1;
    let spruce_super = spruce_eff.iter().any(|&(_, e)| e > 1.0);
    println!(
        "\n  Spruce shows a super-linear cache window: {spruce_super} (paper: yes, to 512 nodes)"
    );
    assert!(spruce_super, "expected super-linear efficiency on Spruce");
    // Piz Daint ≥ Titan at every common node count beyond 64 (paper §VI)
    for (&(n, ed), &(_, et)) in daint_eff.iter().zip(titan_eff) {
        if n >= 64 {
            assert!(
                ed >= et,
                "Piz Daint efficiency must dominate Titan at {n} nodes: {ed} vs {et}"
            );
        }
    }
    println!("  Piz Daint efficiency dominates Titan at scale: true");

    // CSV
    let xs: Vec<f64> = node_counts(8192).iter().map(|&n| n as f64).collect();
    let cols: Vec<(String, Vec<f64>)> = effs
        .iter()
        .map(|(label, e)| {
            (
                label.clone(),
                xs.iter()
                    .map(|&x| {
                        e.iter()
                            .find(|&&(n, _)| n as f64 == x)
                            .map(|&(_, v)| v)
                            .unwrap_or(f64::NAN)
                    })
                    .collect(),
            )
        })
        .collect();
    let path = args.out_dir.join("fig8_efficiency.csv");
    write_series_csv(&path, "nodes", &xs, &cols).expect("csv");
    println!("\nwrote {}", path.display());
}
