//! Figure 5 — CUDA strong scaling on Titan, 1–8,192 nodes.
//!
//! Measures real solver protocols on laptop-scale crooked-pipe runs,
//! extrapolates the iteration counts to the paper's 4000² mesh with a
//! fitted growth law, and replays the protocols on the modelled Titan
//! (K20x + Gemini). Series: `CG - 1`, `PPCG - 1/4/8/16`.
//!
//! `cargo run --release -p tea-bench --bin fig5 [-- --cells N --steps N --target N]`

use tea_bench::{extrapolate_to, print_series_table, write_series, FigArgs, SolverConfig};
use tea_perfmodel::{titan, KernelBytes, ScalingSeries};

fn main() {
    let args = FigArgs::parse("fig5", 128, 2);
    let machine = titan();
    let global = (args.target_cells, args.target_cells);
    println!(
        "Fig. 5: strong scaling on {} — {}^2 mesh (measured at {}^2, extrapolated)\n",
        machine.name, args.target_cells, args.cells
    );

    let configs = [
        SolverConfig::cg(),
        SolverConfig::ppcg(1),
        SolverConfig::ppcg(4),
        SolverConfig::ppcg(8),
        SolverConfig::ppcg(16),
    ];
    let mut series = Vec::new();
    for config in &configs {
        let (trace, ext) = extrapolate_to(config, args.cells, args.steps, args.target_cells);
        eprintln!(
            "  {}: measured {} iters at κ = {:.0}; κ(target) = {:.0} -> x{:.1} = {} outer iterations",
            config.label,
            ext.measurement.iterations,
            ext.kappa_measured,
            ext.kappa_target,
            ext.factor,
            trace.outer_iterations
        );
        series.push(ScalingSeries::sweep(
            config.label.clone(),
            &machine,
            &trace,
            global,
            KernelBytes::default(),
        ));
    }

    println!("\ntime to solution (s):");
    print_series_table("nodes", &series);

    println!("\nshape checks against the paper:");
    for s in &series {
        println!("  {} fastest at {} nodes", s.label, s.best_nodes());
    }
    let at = machine.max_nodes;
    let cg = series[0].time_at(at).unwrap();
    let pp16 = series[4].time_at(at).unwrap();
    println!(
        "  at {at} nodes: CG - 1 = {cg:.3}s, PPCG - 16 = {pp16:.3}s ({:.1}x; paper's best \
         CUDA config at 8,192 nodes was PPCG-16 at 4.26 s)",
        cg / pp16
    );
    assert!(pp16 < cg, "PPCG-16 must beat CG-1 at full scale");
    // the knee: the fixed 4000^2 problem stops scaling around 1k nodes
    let knee = series[4].best_nodes();
    println!("  PPCG - 16 knee at {knee} nodes (paper: plateau from ~1,024)");

    let path = write_series(&args, "fig5_titan.csv", &series);
    println!("\nwrote {}", path.display());
}
