//! Figure 6 — CUDA strong scaling on Piz Daint, 1–2,048 nodes, plus the
//! §VI cross-machine claim (Piz Daint ≈ 47 % faster than Titan at 2,048
//! nodes thanks to Aries vs Gemini).
//!
//! `cargo run --release -p tea-bench --bin fig6 [-- --cells N --steps N --target N]`

use tea_bench::{extrapolate_to, print_series_table, write_series, FigArgs, SolverConfig};
use tea_perfmodel::{piz_daint, titan, KernelBytes, ScalingSeries};

fn main() {
    let args = FigArgs::parse("fig6", 128, 2);
    let machine = piz_daint();
    let global = (args.target_cells, args.target_cells);
    println!(
        "Fig. 6: strong scaling on {} — {}^2 mesh (measured at {}^2, extrapolated)\n",
        machine.name, args.target_cells, args.cells
    );

    let configs = [
        SolverConfig::cg(),
        SolverConfig::ppcg(1),
        SolverConfig::ppcg(4),
        SolverConfig::ppcg(8),
        SolverConfig::ppcg(16),
    ];
    let mut series = Vec::new();
    let mut best_trace = None;
    for config in &configs {
        let (trace, ext) = extrapolate_to(config, args.cells, args.steps, args.target_cells);
        eprintln!(
            "  {}: scale x{:.1}, extrapolated outer iterations {}",
            config.label, ext.factor, trace.outer_iterations
        );
        if config.label == "PPCG - 16" {
            best_trace = Some(trace.clone());
        }
        series.push(ScalingSeries::sweep(
            config.label.clone(),
            &machine,
            &trace,
            global,
            KernelBytes::default(),
        ));
    }

    println!("\ntime to solution (s):");
    print_series_table("nodes", &series);

    for s in &series {
        println!("  {} fastest at {} nodes", s.label, s.best_nodes());
    }

    // claim C3: same GPUs, different interconnect
    let trace = best_trace.unwrap();
    let titan_series = ScalingSeries::sweep(
        "PPCG - 16",
        &titan(),
        &trace,
        global,
        KernelBytes::default(),
    );
    let t_titan = titan_series.time_at(2048).unwrap();
    let t_daint = series[4].time_at(2048).unwrap();
    println!(
        "\nclaim §VI: at 2,048 nodes Titan = {t_titan:.3}s vs Piz Daint = {t_daint:.3}s \
         -> Titan {:.0}% slower (paper: 47%, 4.09 s vs 2.79 s)",
        100.0 * (t_titan / t_daint - 1.0)
    );
    assert!(t_daint < t_titan, "Piz Daint must win at 2,048 nodes");

    let path = write_series(&args, "fig6_piz_daint.csv", &series);
    println!("wrote {}", path.display());
}
