//! `throughput` — the PR 6 batched-solve scheduler benchmark.
//!
//! Queues many independent crooked-pipe decks (a configurable number of
//! *distinct* decks, cycled until the queue reaches `--jobs` entries)
//! and drains them through [`tea_app::serve_decks`] twice:
//!
//! * **cache off** — every job builds and prepares its solver cold;
//! * **cache on** — jobs with equal setup keys (geometry, coefficients
//!   fingerprint, solver, precision, halo depth) reuse pooled
//!   [`tea_core::SolveSession`]s and skip `prepare`.
//!
//! The harness **asserts** the correctness story before writing any
//! numbers: both legs must drain without failures, every job's per-step
//! iteration counts and residual histories must be *bit-identical*
//! between the legs (session reuse must not change results), the cached
//! leg must record cache hits, and it must issue measurably fewer
//! `prepare` calls than the cold leg. Queue-level stats — jobs/sec and
//! p50/p99 job latency — land in the JSON artefact for both legs.
//!
//! ```text
//! cargo run --release -p tea-bench --bin throughput -- \
//!     --jobs 1000 --distinct 100 --out BENCH_PR6.json
//! ```
//!
//! CI runs the same binary in smoke mode (`--jobs 120 --distinct 12`);
//! the asserts are scale-independent.
//!
//! Timing honesty: each leg is measured once, end to end, wall-clock —
//! a queue drain *is* the workload, so there is no warm-up/min-of-reps
//! protocol; the hardware thread count and worker count are recorded so
//! readers can judge the absolute numbers.

use std::io::Write as _;
use std::path::PathBuf;
use tea_app::{crooked_pipe_deck, serve_decks, DeckJob, DeckOutcome};
use tea_serve::{QueueStats, ServeOptions, ServeReport};

const SOLVERS: [&str; 5] = ["cg", "cg_fused", "chebyshev", "ppcg", "mixed_cg"];
const SIZES: [usize; 8] = [12, 16, 20, 24, 28, 32, 36, 40];
const EPS: [f64; 3] = [1e-6, 1e-8, 1e-10];

struct Args {
    jobs: usize,
    distinct: usize,
    steps: u64,
    workers: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 1000,
        distinct: 100,
        steps: 2,
        workers: 0,
        out: PathBuf::from("BENCH_PR6.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_default();
        match flag.as_str() {
            "--jobs" => args.jobs = value().parse().expect("--jobs"),
            "--distinct" => args.distinct = value().parse().expect("--distinct"),
            "--steps" => args.steps = value().parse().expect("--steps"),
            "--workers" => args.workers = value().parse().expect("--workers"),
            "--out" => args.out = PathBuf::from(value()),
            "--help" | "-h" => {
                println!(
                    "throughput: batched multi-solve scheduler, cache on vs off, JSON artefact\n\
                     --jobs N      queued jobs (default 1000)\n\
                     --distinct D  distinct decks cycled through the queue (default 100, max {})\n\
                     --steps N     time steps per job (default 2)\n\
                     --workers W   scheduler workers, 0 = all cores (default 0)\n\
                     --out FILE    JSON artefact path (default BENCH_PR6.json)",
                    SOLVERS.len() * SIZES.len() * EPS.len()
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.jobs >= 1, "--jobs must be positive");
    assert!(
        (1..=SOLVERS.len() * SIZES.len() * EPS.len()).contains(&args.distinct),
        "--distinct must be in 1..={}",
        SOLVERS.len() * SIZES.len() * EPS.len()
    );
    args
}

/// The `i`-th distinct deck: solver varies fastest, then mesh size,
/// then tolerance, so any prefix of the enumeration already mixes
/// solver families and setup keys.
fn distinct_deck(i: usize, steps: u64) -> DeckJob {
    let solver = SOLVERS[i % SOLVERS.len()];
    let n = SIZES[(i / SOLVERS.len()) % SIZES.len()];
    let eps = EPS[(i / (SOLVERS.len() * SIZES.len())) % EPS.len()];
    let mut deck = crooked_pipe_deck(n, solver);
    deck.control.end_step = steps;
    deck.control.summary_frequency = 0;
    deck.control.opts.eps = eps;
    DeckJob {
        label: format!("{solver}-{n}-eps{eps:e}"),
        deck,
    }
}

fn build_queue(args: &Args) -> Vec<DeckJob> {
    (0..args.jobs)
        .map(|j| distinct_deck(j % args.distinct, args.steps))
        .collect()
}

/// Both legs ran the same queue: results must be bit-identical per job.
fn assert_bitwise_equal(cold: &ServeReport<DeckOutcome>, warm: &ServeReport<DeckOutcome>) {
    assert_eq!(cold.stats.failed, 0, "cold leg must drain cleanly");
    assert_eq!(warm.stats.failed, 0, "cached leg must drain cleanly");
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        let (c, w) = (
            &c.result.as_ref().unwrap().output,
            &w.result.as_ref().unwrap().output,
        );
        assert_eq!(c.steps.len(), w.steps.len());
        for (sc, sw) in c.steps.iter().zip(&w.steps) {
            assert_eq!(
                sc.iterations, sw.iterations,
                "session reuse must not change iteration counts"
            );
            assert_eq!(
                sc.initial_residual.to_bits(),
                sw.initial_residual.to_bits(),
                "session reuse must not change the residual history"
            );
            assert_eq!(
                sc.final_residual.to_bits(),
                sw.final_residual.to_bits(),
                "session reuse must not change the residual history"
            );
        }
        assert_eq!(c.final_u, w.final_u, "caching must not change the field");
    }
}

fn leg_json(f: &mut std::fs::File, name: &str, s: &QueueStats, last: bool) -> std::io::Result<()> {
    let comma = if last { "" } else { "," };
    writeln!(
        f,
        "    {{\"cache\": \"{name}\", \"jobs\": {}, \"failed\": {}, \"wall_s\": {:.6}, \
         \"jobs_per_sec\": {:.2}, \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6}, \
         \"hits\": {}, \"misses\": {}, \"prepares\": {}}}{comma}",
        s.jobs,
        s.failed,
        s.wall_s,
        s.jobs_per_sec,
        s.p50_latency_s,
        s.p99_latency_s,
        s.cache.hits,
        s.cache.misses,
        s.cache.prepares,
    )
}

fn write_json(
    args: &Args,
    hw_threads: usize,
    workers: usize,
    cold: &QueueStats,
    warm: &QueueStats,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(&args.out)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"throughput\",")?;
    writeln!(f, "  \"pr\": 6,")?;
    writeln!(f, "  \"workload\": \"crooked_pipe\",")?;
    writeln!(f, "  \"hardware_threads\": {hw_threads},")?;
    writeln!(f, "  \"workers\": {workers},")?;
    writeln!(f, "  \"jobs\": {},", args.jobs)?;
    writeln!(f, "  \"distinct_decks\": {},", args.distinct)?;
    writeln!(f, "  \"steps_per_job\": {},", args.steps)?;
    writeln!(
        f,
        "  \"solvers\": [\"cg\", \"cg_fused\", \"chebyshev\", \"ppcg\", \"mixed_cg\"],"
    )?;
    writeln!(
        f,
        "  \"prepares_saved\": {},",
        cold.cache.prepares - warm.cache.prepares
    )?;
    writeln!(
        f,
        "  \"speedup_jobs_per_sec\": {:.4},",
        warm.jobs_per_sec / cold.jobs_per_sec
    )?;
    writeln!(f, "  \"legs\": [")?;
    leg_json(&mut f, "off", cold, false)?;
    leg_json(&mut f, "on", warm, true)?;
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn print_leg(name: &str, s: &QueueStats) {
    println!(
        "{name:>9}: {} job(s) in {:.3}s = {:.1} jobs/sec, p50 {:.4}s, p99 {:.4}s, \
         cache {} hit(s) / {} miss(es) / {} prepare(s)",
        s.jobs,
        s.wall_s,
        s.jobs_per_sec,
        s.p50_latency_s,
        s.p99_latency_s,
        s.cache.hits,
        s.cache.misses,
        s.cache.prepares
    );
}

fn main() {
    let args = parse_args();
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let opts = ServeOptions {
        workers: args.workers,
        threads_per_job: Some(1),
        cache: true,
        ..Default::default()
    };
    let workers = opts.effective_workers();
    println!(
        "throughput: {} job(s) over {} distinct deck(s), {} step(s) each, \
         {} worker(s), {} hardware thread(s)",
        args.jobs, args.distinct, args.steps, workers, hw_threads
    );

    let cold = serve_decks(
        build_queue(&args),
        &ServeOptions {
            cache: false,
            ..opts
        },
    );
    print_leg("cache off", &cold.stats);
    let warm = serve_decks(build_queue(&args), &opts);
    print_leg("cache on", &warm.stats);

    // the correctness story, asserted before any number is recorded
    assert_bitwise_equal(&cold, &warm);
    assert_eq!(
        cold.stats.cache.hits, 0,
        "the cold leg must never hit the cache"
    );
    assert_eq!(
        cold.stats.cache.prepares, args.jobs as u64,
        "the cold leg must prepare once per job"
    );
    assert!(
        warm.stats.cache.hits > 0,
        "repeated decks must hit the session cache"
    );
    assert!(
        warm.stats.cache.prepares < cold.stats.cache.prepares,
        "the pool must save preparations: {} (on) vs {} (off)",
        warm.stats.cache.prepares,
        cold.stats.cache.prepares
    );

    write_json(&args, hw_threads, workers, &cold.stats, &warm.stats).expect("write JSON artefact");
    println!(
        "cache reuse saved {} of {} prepare call(s); wrote {}",
        cold.stats.cache.prepares - warm.stats.cache.prepares,
        cold.stats.cache.prepares,
        args.out.display()
    );
}
