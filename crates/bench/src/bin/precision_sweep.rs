//! `precision_sweep` — sweeps arithmetic precision × solver on the
//! crooked-pipe decks and records the trade-off machine-readably.
//!
//! For each mesh size it runs the same deck in three precision modes
//! per solver family:
//!
//! * `f64` — the reference double-precision run;
//! * `mixed` — f32 preconditioning / inner smoothing inside the f64
//!   outer recurrence (`mixed_cg`, `mixed_ppcg`);
//! * `f32` — everything in single precision (`cg_f32`), kept honest by
//!   its stagnation guard.
//!
//! The harness **asserts** the correctness story: every mixed step must
//! converge to the same `tl_eps` as the f64 run, and the mixed final
//! temperature field must match f64's to far beyond f32 resolution.
//! The f32 leg is recorded as-is — on tight tolerances it is *expected*
//! to stall at the round-off floor, and that non-convergence is part of
//! the artefact's story (why mixed precision exists).
//!
//! **Halo volume**: each leg additionally runs the same deck decomposed
//! over `--ranks` simulated ranks and sums the per-rank [`CommStats`]
//! byte counters — *measured* message bytes, accounted by element width
//! (4 bytes per `f32` element on the precision-native wire). The
//! harness asserts the volume story: the all-`f32` leg must move ≤ 0.55
//! bytes per exchanged element for every byte the `f64` leg moves
//! (~0.5 expected), and `mixed_ppcg`'s deep-halo inner exchanges must
//! cut total halo bytes to ≤ 0.75× plain PPCG's on the same deck.
//!
//! ```text
//! cargo run --release -p tea-bench --bin precision_sweep -- \
//!     --sizes 96,128 --steps 2 --out BENCH_PR5.json
//! ```
//!
//! Timing honesty: wall times sum the per-step solve walls only; one
//! discarded warm-up run precedes `--reps` timed runs per leg (minimum
//! kept). On a 1-core container the absolute times still rank the
//! memory-traffic story (f32 sweeps move half the bytes), and the
//! hardware thread count is recorded so readers can judge.
//!
//! [`CommStats`]: tea_comms::CommStats

use std::io::Write as _;
use std::path::PathBuf;
use tea_app::{crooked_pipe_deck, run_serial, run_threaded_ranks, Deck, RankOutput};
use tea_comms::StatsSnapshot;
use tea_core::Precision;
use tea_mesh::Field2D;

struct Args {
    sizes: Vec<usize>,
    steps: u64,
    eps: f64,
    max_iters: u64,
    reps: usize,
    ranks: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        sizes: vec![96, 128],
        steps: 2,
        eps: 1e-10,
        max_iters: 10_000,
        reps: 2,
        ranks: 4,
        out: PathBuf::from("BENCH_PR5.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_default();
        match flag.as_str() {
            "--sizes" => {
                args.sizes = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect()
            }
            "--steps" => args.steps = value().parse().expect("--steps"),
            "--eps" => args.eps = value().parse().expect("--eps"),
            "--max-iters" => args.max_iters = value().parse().expect("--max-iters"),
            "--reps" => args.reps = value().parse::<usize>().expect("--reps").max(1),
            "--ranks" => args.ranks = value().parse::<usize>().expect("--ranks").max(2),
            "--out" => args.out = PathBuf::from(value()),
            "--help" | "-h" => {
                println!(
                    "precision_sweep: f64 vs f32 vs mixed solves + halo volume, JSON artefact\n\
                     --sizes a,b,..  mesh sizes per side (default 96,128)\n\
                     --steps N       time steps per run (default 2)\n\
                     --eps E         solver tolerance, tl_eps (default 1e-10)\n\
                     --max-iters N   per-step iteration cap (default 10000)\n\
                     --reps N        timed runs per leg, min kept (default 2)\n\
                     --ranks R       simulated ranks for the halo-volume runs (default 4)\n\
                     --out FILE      JSON artefact path (default BENCH_PR5.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One leg of the sweep: a solver family at one precision.
struct Leg {
    family: &'static str,
    precision: Option<Precision>,
    /// Expected to meet `tl_eps` every step (asserted).
    must_converge: bool,
}

fn deck_for(leg: &Leg, cells: usize, args: &Args) -> Deck {
    let mut deck = crooked_pipe_deck(cells, leg.family);
    deck.control.precision = leg.precision;
    deck.control.end_step = args.steps;
    deck.control.summary_frequency = 0;
    deck.control.opts.eps = args.eps;
    deck.control.opts.max_iters = args.max_iters;
    deck.control.precon = tea_core::PreconKind::BlockJacobi;
    deck.control.presteps = 20;
    if leg.family == "ppcg" {
        deck.control.ppcg_halo_depth = 4;
        deck.control.ppcg_inner_steps = 16;
        // block-Jacobi cannot ride matrix powers on a decomposed tile
        // (§IV.C.2; the diagonal now can — the driver assembles the
        // extra coefficient layer it needs) — keep the deep-halo legs
        // unpreconditioned like the paper's CPPCG so BENCH numbers stay
        // comparable across revisions
        deck.control.precon = tea_core::PreconKind::None;
    }
    deck
}

fn solve_wall(out: &RankOutput) -> f64 {
    out.steps.iter().map(|s| s.wall).sum()
}

struct Row {
    solver: String,
    precision: &'static str,
    cells: usize,
    wall_s: f64,
    iterations: u64,
    converged: bool,
    worst_final_rel_residual: f64,
    max_rel_diff_vs_f64: f64,
    /// All-rank comm counters of the decomposed run; the mean bytes per
    /// exchanged element ([`StatsSnapshot::mean_bytes_per_elem_sent`],
    /// 8.0 pure-f64 → 4.0 pure-f32) is the iteration-count-independent
    /// measure of per-message volume reduction.
    halo: StatsSnapshot,
}

/// Runs the deck decomposed and sums the measured per-rank comm bytes.
fn measure_halo_volume(deck: &Deck, ranks: usize) -> StatsSnapshot {
    let outs = run_threaded_ranks(deck, ranks).expect("deck runs");
    let mut v = StatsSnapshot::default();
    for o in &outs {
        v.merge(&o.comm);
    }
    v
}

fn measure(leg: &Leg, cells: usize, args: &Args, reference: Option<&Field2D>) -> (Row, Field2D) {
    let deck = deck_for(leg, cells, args);
    let solver = deck.control.effective_solver().expect("legs are routable");

    let _ = run_serial(&deck).expect("deck runs"); // discarded warm-up
    let mut wall_s = f64::INFINITY;
    let mut run = None;
    for _ in 0..args.reps {
        let out = run_serial(&deck).expect("deck runs");
        wall_s = wall_s.min(solve_wall(&out));
        run = Some(out);
    }
    let run = run.expect("at least one rep");
    let halo = measure_halo_volume(&deck, args.ranks);

    let converged = run.steps.iter().all(|s| s.converged);
    let worst_rel = run
        .steps
        .iter()
        .map(|s| s.final_residual / s.initial_residual.max(f64::MIN_POSITIVE))
        .fold(0.0f64, f64::max);
    let field = run.final_u.expect("serial run gathers the field");
    let diff = reference
        .map(|r| field.interior_max_rel_diff(r))
        .unwrap_or(0.0);

    if leg.must_converge {
        assert!(
            converged,
            "{solver} at {cells}^2 must converge to tl_eps={:e} every step",
            args.eps
        );
    }
    if leg.precision == Some(Precision::Mixed) {
        assert!(
            diff < 1e-6,
            "{solver} at {cells}^2: mixed field must match the f64 answer to deck \
             tolerance, worst rel diff {diff:e}"
        );
    }

    (
        Row {
            solver,
            precision: leg.precision.unwrap_or(Precision::F64).label(),
            cells,
            wall_s,
            iterations: run.steps.iter().map(|s| s.iterations).sum(),
            converged,
            worst_final_rel_residual: worst_rel,
            max_rel_diff_vs_f64: diff,
            halo,
        },
        field,
    )
}

fn write_json(args: &Args, hw_threads: usize, rows: &[Row]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(&args.out)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"precision_sweep\",")?;
    writeln!(f, "  \"pr\": 5,")?;
    writeln!(f, "  \"workload\": \"crooked_pipe\",")?;
    writeln!(f, "  \"hardware_threads\": {hw_threads},")?;
    writeln!(f, "  \"worker_threads\": {},", tea_core::num_threads())?;
    writeln!(f, "  \"steps\": {},", args.steps)?;
    writeln!(f, "  \"eps\": {:e},", args.eps)?;
    writeln!(f, "  \"max_iters\": {},", args.max_iters)?;
    writeln!(f, "  \"reps\": {},", args.reps)?;
    writeln!(f, "  \"halo_ranks\": {},", args.ranks)?;
    writeln!(f, "  \"results\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"solver\": \"{}\", \"precision\": \"{}\", \"cells\": {}, \
             \"wall_s\": {:.6}, \"iterations\": {}, \"converged\": {}, \
             \"worst_final_rel_residual\": {:e}, \"max_rel_diff_vs_f64\": {:e}}}{comma}",
            r.solver,
            r.precision,
            r.cells,
            r.wall_s,
            r.iterations,
            r.converged,
            r.worst_final_rel_residual,
            r.max_rel_diff_vs_f64,
        )?;
    }
    writeln!(f, "  ],")?;
    // measured message bytes of each leg's decomposed run, accounted by
    // element width on the wire, with the reduction ratios vs the
    // family's f64 leg on the same deck
    writeln!(f, "  \"halo_volume\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let reference = rows
            .iter()
            .find(|q| q.cells == r.cells && q.precision == "f64" && family(q) == family(r));
        let (bytes_ratio, per_elem_ratio) = reference
            .map(|q| {
                (
                    r.halo.bytes_sent() as f64 / q.halo.bytes_sent() as f64,
                    r.halo.mean_bytes_per_elem_sent() / q.halo.mean_bytes_per_elem_sent(),
                )
            })
            .unwrap_or((1.0, 1.0));
        writeln!(
            f,
            "    {{\"solver\": \"{}\", \"precision\": \"{}\", \"cells\": {}, \
             \"msgs\": {}, \"elems_f64\": {}, \"elems_f32\": {}, \"bytes\": {}, \
             \"bytes_per_elem\": {:.4}, \"bytes_ratio_vs_f64\": {:.4}, \
             \"bytes_per_elem_ratio_vs_f64\": {:.4}}}{comma}",
            r.solver,
            r.precision,
            r.cells,
            r.halo.msgs_sent,
            r.halo.elems_sent_f64,
            r.halo.elems_sent_f32,
            r.halo.bytes_sent(),
            r.halo.mean_bytes_per_elem_sent(),
            bytes_ratio,
            per_elem_ratio,
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

/// The f64 family a reduced-precision leg compares against.
fn family(r: &Row) -> &'static str {
    match r.solver.as_str() {
        "cg" | "mixed_cg" | "cg_f32" => "cg",
        _ => "ppcg",
    }
}

fn main() {
    let args = parse_args();
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "precision_sweep: crooked pipe, tl_eps={:e}, {} step(s), {} hardware thread(s)",
        args.eps, args.steps, hw_threads
    );

    // (family, precision, must_converge): the f32 leg is expected to
    // stall at tight tolerances — that IS the result being recorded
    let legs = [
        Leg {
            family: "cg",
            precision: None,
            must_converge: true,
        },
        Leg {
            family: "cg",
            precision: Some(Precision::Mixed),
            must_converge: true,
        },
        Leg {
            family: "cg",
            precision: Some(Precision::F32),
            must_converge: false,
        },
        Leg {
            family: "ppcg",
            precision: None,
            must_converge: true,
        },
        Leg {
            family: "ppcg",
            precision: Some(Precision::Mixed),
            must_converge: true,
        },
    ];

    let mut rows = Vec::new();
    println!(
        "{:>12} {:>10} {:>8} {:>10} {:>7} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "solver",
        "precision",
        "cells",
        "wall(s)",
        "iters",
        "converged",
        "worst resid",
        "diff vs f64",
        "halo bytes",
        "B/elem"
    );
    for &cells in &args.sizes {
        let mut reference: Option<Field2D> = None;
        let mut ref_halo: Option<StatsSnapshot> = None;
        for leg in &legs {
            // each family's f64 run is the reference for its reduced legs
            if leg.precision.is_none() {
                reference = None;
                ref_halo = None;
            }
            let (row, field) = measure(leg, cells, &args, reference.as_ref());
            println!(
                "{:>12} {:>10} {:>8} {:>10.4} {:>7} {:>10} {:>12.3e} {:>12.3e} {:>12} {:>8.2}",
                row.solver,
                row.precision,
                row.cells,
                row.wall_s,
                row.iterations,
                row.converged,
                row.worst_final_rel_residual,
                row.max_rel_diff_vs_f64,
                row.halo.bytes_sent(),
                row.halo.mean_bytes_per_elem_sent(),
            );

            // the measured message-volume story, asserted
            if let Some(r) = &ref_halo {
                if leg.precision == Some(Precision::F32) {
                    // every exchanged element is a halo element of the
                    // same protocol: f32 wire width must halve the
                    // per-element cost (0.55 leaves room for the f64
                    // initial-iterate exchange each step)
                    let ratio = row.halo.mean_bytes_per_elem_sent() / r.mean_bytes_per_elem_sent();
                    assert!(
                        ratio <= 0.55,
                        "{} at {cells}^2: f32 halos must move ≤ 0.55 bytes per element \
                         of the f64 leg, measured ratio {ratio:.3}",
                        row.solver
                    );
                }
                if row.solver == "mixed_ppcg" {
                    // same iteration protocol as ppcg, inner deep halos
                    // at f32: total measured bytes must drop
                    let ratio = row.halo.bytes_sent() as f64 / r.bytes_sent() as f64;
                    assert!(
                        ratio <= 0.75,
                        "mixed_ppcg at {cells}^2: native f32 inner halos must cut total \
                         halo bytes vs ppcg, measured ratio {ratio:.3}"
                    );
                }
            }

            if leg.precision.is_none() {
                reference = Some(field);
                ref_halo = Some(row.halo);
            }
            rows.push(row);
        }
    }

    write_json(&args, hw_threads, &rows).expect("write JSON artefact");
    println!("wrote {}", args.out.display());
}
