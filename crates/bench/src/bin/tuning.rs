//! Auto-tuning acceptance bench: `tl_solver=auto` vs the best hand.
//!
//! For each deck in a suite spanning mesh sizes, tolerances, aspect
//! ratios, coefficient recipes and material contrasts, this harness
//! runs **every** hand-picked (solver × precision × halo depth)
//! configuration from the tuner's own candidate set, scores each by
//! iteration-weighted cost (steady-state iterations × predicted
//! bytes/iteration, the same model the tuner's prior uses), then runs
//! `auto` and asserts the adopted winner's steady-state cost lands
//! within 10% of the best hand-picked configuration — i.e. the tuner
//! finds the design point a human sweep would have found, without the
//! sweep. Results go to `--out` (default `BENCH_PR8.json`).
//!
//! `--quick` shrinks the meshes and steps for the CI smoke leg;
//! the 10% contract is asserted in both modes.

use std::io::Write;

use tea_app::{crooked_pipe_deck, run_serial, solver_registry, Deck};
use tea_mesh::{crooked_pipe_rect, Coefficient};
use tea_tune::plan_candidates;

/// Tolerated overshoot of the best hand-picked cost: the race judges
/// candidates on a cold first solve while the sweep scores the warm
/// steady state, so a strict equality would be flaky by design.
const TOLERANCE: f64 = 1.10;

struct Args {
    decks: usize,
    quick: bool,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        decks: 6,
        quick: false,
        seed: 0,
        out: "BENCH_PR8.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--decks" => args.decks = value().parse().expect("--decks"),
            "--quick" => args.quick = true,
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--out" => args.out = value(),
            other => panic!("unknown option '{other}'"),
        }
    }
    args
}

/// The deck suite: named variations of the crooked pipe that pull the
/// best design point in different directions (loose tolerances favour
/// reduced precision, deep halos only pay off on stretched meshes,
/// recip-conductivity and contrast changes move the spectrum).
fn build_suite(quick: bool) -> Vec<(String, Deck)> {
    let size = |n: usize| if quick { (n / 2).max(12) } else { n };
    let steps = if quick { 1 } else { 2 };
    let mut suite = Vec::new();
    let mut push = |name: &str, mut deck: Deck, eps: f64| {
        deck.control.end_step = steps;
        deck.control.summary_frequency = 0;
        deck.control.opts.eps = eps;
        suite.push((name.to_string(), deck));
    };

    push("pipe-loose", crooked_pipe_deck(size(16), "cg"), 1e-6);
    push("pipe-tight", crooked_pipe_deck(size(24), "cg"), 1e-10);
    push("pipe-mid", crooked_pipe_deck(size(32), "cg"), 1e-8);

    let mut stretched = crooked_pipe_deck(size(16), "cg");
    stretched.problem = crooked_pipe_rect(size(48), size(16));
    push("pipe-stretched", stretched, 1e-8);

    let mut recip = crooked_pipe_deck(size(24), "cg");
    recip.problem.coefficient = Coefficient::RecipConductivity;
    push("pipe-recip", recip, 1e-8);

    let mut contrast = crooked_pipe_deck(size(20), "cg");
    for s in &mut contrast.problem.states {
        s.density *= 10.0; // harsher wall/pipe contrast, worse spectrum
    }
    push("pipe-contrast", contrast, 1e-8);

    suite
}

/// Steady-state iterations of a run: the last step's count (earlier
/// steps pay one-off costs — eigen presteps, the auto race itself).
fn steady_iterations(deck: &Deck) -> Option<(u64, tea_app::RankOutput)> {
    match run_serial(deck) {
        Ok(out) if out.steps.iter().all(|s| s.converged) => {
            let iters = out.steps.last()?.iterations;
            Some((iters, out))
        }
        _ => None, // diverged, stalled or capped: not a usable config
    }
}

fn main() {
    let args = parse_args();
    tea_core::set_num_threads(1);
    let registry = solver_registry();
    let suite = build_suite(args.quick);
    let n_decks = args.decks.min(suite.len());
    println!(
        "tuning: {} deck(s), seed {}, {} mode, tolerance {:.0}%",
        n_decks,
        args.seed,
        if args.quick { "quick" } else { "full" },
        (TOLERANCE - 1.0) * 100.0,
    );

    let mut rows = Vec::new();
    let mut max_ratio = 0.0f64;
    for (name, base) in suite.into_iter().take(n_decks) {
        let mut params = base.control.solver_params();
        params.tune_seed = args.seed;
        let candidates = plan_candidates(registry, &params, args.seed);

        // the hand-picked sweep: every candidate config, scored at
        // steady state by the same bytes/iteration model the tuner uses
        let mut best: Option<(String, u64, f64)> = None;
        let mut converged = 0usize;
        for c in &candidates {
            let mut deck = base.clone();
            deck.control.solver = c.solver.clone();
            deck.control.ppcg_halo_depth = c.halo_depth;
            if let Some((iters, _)) = steady_iterations(&deck) {
                converged += 1;
                let cost = iters as f64 * c.bytes_per_iteration;
                if best.as_ref().is_none_or(|(_, _, b)| cost < *b) {
                    best = Some((c.label(), iters, cost));
                }
            }
        }
        let (best_label, best_iters, best_cost) =
            best.expect("at least one hand-picked config must converge");

        // auto on the same deck
        let mut deck = base.clone();
        deck.control.solver = "auto".into();
        deck.control.tune_seed = args.seed;
        let (auto_iters, out) = steady_iterations(&deck).expect("auto must converge");
        let tune = out.tune.expect("auto leaves a tune log");
        let winner = tune.winner.clone().expect("auto adopts a winner");
        let winner_bytes = candidates
            .iter()
            .find(|c| c.label() == winner)
            .map(|c| c.bytes_per_iteration)
            .expect("winner comes from the candidate set");
        let auto_cost = auto_iters as f64 * winner_bytes;
        let ratio = auto_cost / best_cost;
        max_ratio = max_ratio.max(ratio);

        println!(
            "  {name:<16} best {best_label:<12} {best_iters:>5} it  {best_cost:>10.3e} | \
             auto {winner:<12} {auto_iters:>5} it  {auto_cost:>10.3e}  ratio {ratio:.3} \
             ({converged}/{} configs converged)",
            candidates.len(),
        );
        assert!(
            ratio <= TOLERANCE,
            "deck {name}: auto cost {auto_cost:.3e} ({winner}) exceeds {TOLERANCE}x the best \
             hand-picked {best_cost:.3e} ({best_label})"
        );
        rows.push((
            name,
            base.problem.x_cells,
            base.problem.y_cells,
            base.control.opts.eps,
            best_label,
            best_iters,
            best_cost,
            winner,
            auto_iters,
            auto_cost,
            ratio,
            converged,
            candidates.len(),
        ));
    }

    let mut f = std::fs::File::create(&args.out).expect("create output file");
    writeln!(f, "{{").unwrap();
    writeln!(f, "  \"bench\": \"tuning\",").unwrap();
    writeln!(f, "  \"seed\": {},", args.seed).unwrap();
    writeln!(f, "  \"quick\": {},", args.quick).unwrap();
    writeln!(f, "  \"tolerance\": {TOLERANCE},").unwrap();
    writeln!(f, "  \"max_ratio\": {max_ratio:.4},").unwrap();
    writeln!(f, "  \"decks\": [").unwrap();
    let n = rows.len();
    for (
        i,
        (
            name,
            nx,
            ny,
            eps,
            best_label,
            best_iters,
            best_cost,
            winner,
            auto_iters,
            auto_cost,
            ratio,
            converged,
            total,
        ),
    ) in rows.into_iter().enumerate()
    {
        writeln!(f, "    {{").unwrap();
        writeln!(f, "      \"name\": \"{name}\",").unwrap();
        writeln!(f, "      \"cells\": [{nx}, {ny}],").unwrap();
        writeln!(f, "      \"eps\": {eps:e},").unwrap();
        writeln!(f, "      \"configs_converged\": {converged},").unwrap();
        writeln!(f, "      \"configs_total\": {total},").unwrap();
        writeln!(
            f,
            "      \"best\": {{\"config\": \"{best_label}\", \"iterations\": {best_iters}, \
             \"cost\": {best_cost:.3}}},"
        )
        .unwrap();
        writeln!(
            f,
            "      \"auto\": {{\"winner\": \"{winner}\", \"iterations\": {auto_iters}, \
             \"cost\": {auto_cost:.3}, \"ratio\": {ratio:.4}}}"
        )
        .unwrap();
        writeln!(f, "    }}{}", if i + 1 < n { "," } else { "" }).unwrap();
    }
    writeln!(f, "  ]").unwrap();
    writeln!(f, "}}").unwrap();
    println!(
        "max ratio {max_ratio:.3} (tolerance {TOLERANCE}); wrote {}",
        args.out
    );
}
