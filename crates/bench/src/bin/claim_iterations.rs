//! §III.C claim (Eqs. 6-7) — the outer:total iteration ratio of CPPCG is
//! governed by √(κcg/κpcg), which measures the reduction in global dot
//! products versus plain CG.
//!
//! Compares the measured CG iteration count, CPPCG outer iteration
//! count, and the theoretical bounds.
//!
//! `cargo run --release -p tea-bench --bin claim_iterations [-- --cells N]`

use tea_bench::{measure, FigArgs, SolverConfig};
use tea_core::cg_iteration_bound;

fn main() {
    let args = FigArgs::parse("claim_iterations", 128, 1);
    let n = args.cells;
    println!("Eqs. 6-7: iteration accounting on the crooked pipe {n}x{n}\n");

    let cg = measure(&SolverConfig::cg(), n, args.steps);
    println!(
        "CG - 1:    {:>6} iterations, {:>6} reductions, {:>6} sweeps",
        cg.iterations,
        cg.trace.reductions,
        cg.trace.spmv.total()
    );

    for m in [4usize, 10, 16] {
        let mut config = SolverConfig::ppcg(1);
        config.label = format!("CPPCG m={m}");
        // measure with m inner steps
        let deck = {
            let mut d = tea_app::crooked_pipe_deck(n, "ppcg");
            d.control.end_step = args.steps;
            d.control.summary_frequency = 0;
            d.control.ppcg_inner_steps = m;
            d
        };
        let out = tea_app::run_serial(&deck).expect("deck runs");
        let iters: u64 = out.steps.iter().map(|s| s.iterations).sum();
        let presteps = 30 * args.steps; // eigen-estimation prelude
        let outer = iters.saturating_sub(presteps);
        println!(
            "CPPCG m={m:<2}: {outer:>5} outer iterations (+{presteps} presteps), \
             {:>6} reductions, {:>6} sweeps -> dot-product reduction {:.1}x",
            out.trace.reductions,
            out.trace.spmv.total(),
            cg.trace.reductions as f64 / out.trace.reductions as f64,
        );
    }

    // theoretical bounds from the estimated condition number
    if let Some((lo, hi)) = measure(&SolverConfig::ppcg(1), n, 1).trace.eigen_bounds {
        let kappa = hi / lo;
        let eps = 1e-10;
        let k_total = cg_iteration_bound(kappa, eps);
        println!("\nestimated κ(A) = {kappa:.1}");
        println!(
            "Eq. 6 bound on total iterations: {k_total:.0} (measured CG: {})",
            cg.iterations
        );
        for m in [4usize, 10, 16] {
            let c = ((kappa.sqrt() - 1.0) / (kappa.sqrt() + 1.0)).powi(m as i32);
            let kappa_pcg = ((1.0 + c) / (1.0 - c)).powi(2);
            let k_outer = cg_iteration_bound(kappa_pcg, eps);
            println!(
                "Eq. 7 bound on outer iterations (m = {m:>2}): {k_outer:>6.0} \
                 -> predicted dot-product reduction √(κcg/κpcg) = {:.1}x",
                (kappa / kappa_pcg).sqrt()
            );
        }
    }
}
