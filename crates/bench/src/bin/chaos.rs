//! Chaos drain: the fault-tolerance acceptance harness.
//!
//! Drains a queue of mixed decks twice — once clean (the baseline),
//! once with a deterministic seeded [`tea_fault::FaultPlan`] injecting
//! NaN poisons and worker panics into ~`--fault-rate` of the jobs —
//! and asserts the robustness contract:
//!
//! * **zero lost jobs** — every submitted job reports an outcome;
//! * **zero escaped panics** — every injected panic is caught and
//!   accounted in `panics_recovered`;
//! * **bit-identical unfaulted results** — jobs the plan left alone
//!   produce exactly the clean run's fields and residuals;
//! * **typed outcomes for every faulted job** — recovered (clean
//!   retry), degraded (precision-ladder escalation with history),
//!   timed out, or failed, never a stringly mystery.
//!
//! Writes the recovery counters to `--out` (default `BENCH_PR7.json`).

use std::io::Write;

use tea_app::{crooked_pipe_deck, serve_decks, serve_decks_with_plan, DeckJob};
use tea_core::Precision;
use tea_fault::{FaultKind, FaultPlan};
use tea_serve::{JobError, ServeOptions};

struct Args {
    jobs: usize,
    fault_rate: f64,
    seed: u64,
    workers: usize,
    retries: u32,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 500,
        fault_rate: 0.2,
        seed: 42,
        workers: 0,
        retries: 2,
        out: "BENCH_PR7.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--jobs" => args.jobs = value().parse().expect("--jobs"),
            "--fault-rate" => args.fault_rate = value().parse().expect("--fault-rate"),
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--workers" => args.workers = value().parse().expect("--workers"),
            "--retries" => args.retries = value().parse().expect("--retries"),
            "--out" => args.out = value(),
            other => panic!("unknown option '{other}'"),
        }
    }
    args
}

/// A mixed queue: three sizes, f64 CG and reduced-precision CG (the
/// latter exercises the cg_f32 → mixed_cg → cg degradation ladder when
/// poisoned), one or two steps each.
fn build_queue(jobs: usize) -> Vec<DeckJob> {
    (0..jobs)
        .map(|i| {
            let n = 12 + 4 * (i % 3);
            let mut deck = crooked_pipe_deck(n, "cg");
            deck.control.end_step = 1 + (i % 2) as u64;
            deck.control.summary_frequency = 0;
            deck.control.opts.eps = 1e-6;
            if i % 3 == 0 {
                deck.control.precision = Some(Precision::F32);
            }
            DeckJob {
                label: format!("chaos-{i}-n{n}"),
                deck,
            }
        })
        .collect()
}

fn bits_of(u: &tea_mesh::Field2D) -> Vec<u64> {
    u.raw().iter().map(|x| x.to_bits()).collect()
}

fn main() {
    let args = parse_args();
    let plan = FaultPlan::serving(args.seed, args.fault_rate);
    let opts = ServeOptions {
        workers: args.workers,
        threads_per_job: Some(1),
        cache: true,
        deadline: None,
        retries: args.retries,
    };
    println!(
        "chaos: {} job(s), seed {}, fault rate {:.0}%, {} worker(s), {} retries",
        args.jobs,
        args.seed,
        args.fault_rate * 100.0,
        opts.effective_workers(),
        args.retries,
    );

    let baseline = serve_decks(build_queue(args.jobs), &opts);
    assert_eq!(baseline.stats.failed, 0, "the clean run must drain cleanly");
    println!(
        "  clean leg: {:.2} jobs/sec, {} prepare(s)",
        baseline.stats.jobs_per_sec, baseline.stats.cache.prepares
    );

    // Injected panics print nothing: the queue's catch_unwind is the
    // mechanism under test, and 100 backtraces of stderr would drown
    // the report. The hook is restored before the final asserts so a
    // genuine harness failure still explains itself.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let chaos = serve_decks_with_plan(build_queue(args.jobs), &opts, Some(&plan));
    std::panic::set_hook(default_hook);

    // zero lost jobs, in submission order
    assert_eq!(chaos.outcomes.len(), args.jobs, "every job must report");
    for (i, o) in chaos.outcomes.iter().enumerate() {
        assert_eq!(o.job, i, "outcomes must come back in submission order");
    }

    // zero escaped panics: each PanicWorker fault fires exactly once
    // (attempt 0) and must be caught and counted
    let injected_panics = (0..args.jobs)
        .filter(|&j| matches!(plan.fault_for(j), Some(FaultKind::PanicWorker)))
        .count() as u64;
    assert_eq!(
        chaos.stats.panics_recovered, injected_panics,
        "every injected panic is caught, and nothing else panicked"
    );

    // classify every outcome; faulted jobs must all land in a typed bin
    let (mut recovered, mut degraded, mut timed_out, mut failed) = (0usize, 0usize, 0usize, 0usize);
    let mut unfaulted_mismatch = 0usize;
    for (o, base) in chaos.outcomes.iter().zip(&baseline.outcomes) {
        let fault = plan.fault_for(o.job);
        match (&o.result, fault) {
            (Ok(out), Some(_)) => {
                if out.escalations.is_empty() {
                    recovered += 1;
                } else {
                    degraded += 1;
                }
            }
            (Err(JobError::TimedOut), Some(_)) => timed_out += 1,
            (Err(_), Some(_)) => failed += 1,
            (Ok(out), None) => {
                // unfaulted jobs: bit-identical to the clean run
                let clean = base.result.as_ref().expect("clean run drained");
                let (a, b) = (&out.output, &clean.output);
                let same = a.steps.len() == b.steps.len()
                    && a.steps.iter().zip(&b.steps).all(|(x, y)| {
                        x.iterations == y.iterations
                            && x.final_residual.to_bits() == y.final_residual.to_bits()
                    })
                    && match (&a.final_u, &b.final_u) {
                        (Some(x), Some(y)) => bits_of(x) == bits_of(y),
                        (None, None) => true,
                        _ => false,
                    };
                if !same || !out.escalations.is_empty() {
                    unfaulted_mismatch += 1;
                }
            }
            (Err(e), None) => panic!("unfaulted job {} failed: {e}", o.job),
        }
    }
    let faulted = (0..args.jobs)
        .filter(|&j| plan.fault_for(j).is_some())
        .count();
    assert_eq!(
        recovered + degraded + timed_out + failed,
        faulted,
        "every faulted job lands in a typed outcome bin"
    );
    assert_eq!(
        unfaulted_mismatch, 0,
        "unfaulted jobs must be bit-identical to the fault-free run"
    );
    assert_eq!(failed, 0, "retry + ladder must absorb this fault mix");

    println!(
        "  chaos leg: {:.2} jobs/sec, {} faulted of {} — {} recovered, {} degraded, \
         {} timed out, {} failed; {} retry(ies), {} panic(s) caught",
        chaos.stats.jobs_per_sec,
        faulted,
        args.jobs,
        recovered,
        degraded,
        timed_out,
        failed,
        chaos.stats.retries,
        chaos.stats.panics_recovered,
    );

    let mut f = std::fs::File::create(&args.out).expect("create output file");
    writeln!(f, "{{").unwrap();
    writeln!(f, "  \"bench\": \"chaos\",").unwrap();
    writeln!(f, "  \"jobs\": {},", args.jobs).unwrap();
    writeln!(f, "  \"seed\": {},", args.seed).unwrap();
    writeln!(f, "  \"fault_rate\": {},", args.fault_rate).unwrap();
    writeln!(f, "  \"workers\": {},", opts.effective_workers()).unwrap();
    writeln!(f, "  \"faulted\": {faulted},").unwrap();
    writeln!(f, "  \"recovered\": {recovered},").unwrap();
    writeln!(f, "  \"degraded\": {degraded},").unwrap();
    writeln!(f, "  \"timed_out\": {timed_out},").unwrap();
    writeln!(f, "  \"failed\": {failed},").unwrap();
    writeln!(f, "  \"retries\": {},", chaos.stats.retries).unwrap();
    writeln!(f, "  \"timeouts\": {},", chaos.stats.timeouts).unwrap();
    writeln!(
        f,
        "  \"panics_recovered\": {},",
        chaos.stats.panics_recovered
    )
    .unwrap();
    writeln!(
        f,
        "  \"clean_jobs_per_sec\": {:.3},",
        baseline.stats.jobs_per_sec
    )
    .unwrap();
    writeln!(
        f,
        "  \"chaos_jobs_per_sec\": {:.3},",
        chaos.stats.jobs_per_sec
    )
    .unwrap();
    writeln!(f, "  \"clean_wall_s\": {:.3},", baseline.stats.wall_s).unwrap();
    writeln!(f, "  \"chaos_wall_s\": {:.3}", chaos.stats.wall_s).unwrap();
    writeln!(f, "}}").unwrap();
    println!("wrote {}", args.out);
}
