//! `speedup` — measures the threaded kernel runtime against exact serial
//! execution and records the result machine-readably.
//!
//! For each mesh size it runs the crooked-pipe deck twice per solver
//! (CG and CPPCG-4): once with 1 worker thread (bit-for-bit the old
//! sequential runtime) and once with the requested worker count. It
//! reports the solve-wall speedup, asserts the two final temperature
//! fields are **bit-identical** (the runtime's determinism contract),
//! and writes everything to a JSON artefact (default `BENCH_PR10.json`)
//! so the performance trajectory of the repository is recorded per PR.
//!
//! It also micro-benches the hot kernels (`apply`, `residual`, `dot`,
//! `axpy`, `scale_add`, `fused_cheb`) on crooked-pipe coefficients:
//! each kernel is first run once at 1 thread — the scalar f64 reference
//! path — and once threaded on the lane path, **asserting bitwise
//! equality**, then timed and reported as a percent of the machine's
//! *measured* streaming peak (a flat-array fused update at the same
//! thread count) using the `tea-perfmodel` roofline byte counts. `--smoke`
//! shrinks every axis for CI.
//!
//! ```text
//! cargo run --release -p tea-bench --bin speedup -- \
//!     --sizes 512,1024,2048 --threads 4 --out BENCH_PR10.json
//! ```
//!
//! Timing honesty: the per-step solve is capped at `--max-iters`
//! iterations (default 300) so large meshes time a fixed, identical
//! amount of Krylov work in both configurations instead of waiting for
//! full convergence; the cap, tolerance and convergence flags are all
//! recorded in the artefact. Each configuration runs one discarded
//! warm-up solve (allocator and page-cache first-touch) and then
//! `--reps` timed runs per thread setting, keeping the minimum — the
//! standard defence against one-shot jitter contaminating a trajectory
//! artefact. The hardware thread count is recorded too — a speedup
//! claim from a 1-core container is visibly meaningless.
//!
//! `--require-speedup X` turns the ISSUE's acceptance criterion into a
//! checkable exit status: the CG speedup at the largest measured size
//! must reach `X` when the machine actually has the requested cores
//! (the check is skipped, loudly, when it does not).

use std::io::Write as _;
use std::path::PathBuf;
use tea_app::{crooked_pipe_deck, run_serial, Deck, RankOutput};
use tea_mesh::Field2D;

struct Args {
    sizes: Vec<usize>,
    steps: u64,
    threads: usize,
    max_iters: u64,
    eps: f64,
    reps: usize,
    kernel_cells: usize,
    smoke: bool,
    require_speedup: Option<f64>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = Args {
        sizes: vec![512, 1024, 2048],
        steps: 1,
        threads: hw.max(2),
        max_iters: 300,
        eps: 1e-10,
        reps: 2,
        kernel_cells: 1024,
        smoke: false,
        require_speedup: None,
        out: PathBuf::from("BENCH_PR10.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_default();
        match flag.as_str() {
            "--sizes" => {
                args.sizes = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect()
            }
            "--steps" => args.steps = value().parse().expect("--steps"),
            "--threads" => args.threads = value().parse().expect("--threads"),
            "--max-iters" => args.max_iters = value().parse().expect("--max-iters"),
            "--eps" => args.eps = value().parse().expect("--eps"),
            "--reps" => args.reps = value().parse::<usize>().expect("--reps").max(1),
            "--kernel-cells" => args.kernel_cells = value().parse().expect("--kernel-cells"),
            "--smoke" => {
                args.smoke = true;
                args.sizes = vec![192];
                args.steps = 1;
                args.max_iters = 100;
                args.reps = 1;
                args.kernel_cells = 256;
            }
            "--require-speedup" => {
                args.require_speedup = Some(value().parse().expect("--require-speedup"))
            }
            "--out" => args.out = PathBuf::from(value()),
            "--help" | "-h" => {
                println!(
                    "speedup: serial vs threaded solve timing, JSON artefact\n\
                     --sizes a,b,..      mesh sizes per side (default 512,1024,2048)\n\
                     --steps N           time steps per run (default 1)\n\
                     --threads N         threaded worker count (default max(cores, 2))\n\
                     --max-iters N       per-step iteration cap (default 300)\n\
                     --eps E             solver tolerance (default 1e-10)\n\
                     --reps N            timed runs per config, min kept (default 2)\n\
                     --kernel-cells N    mesh side for the kernel roofline bench (default 1024)\n\
                     --smoke             tiny sizes/reps everywhere, for CI\n\
                     --require-speedup X fail unless CG at the largest size reaches X\n\
                     \x20                   (skipped when the hardware lacks the cores)\n\
                     --out FILE          JSON artefact path (default BENCH_PR10.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn deck_for(solver: &str, cells: usize, args: &Args) -> Deck {
    let mut deck = crooked_pipe_deck(cells, solver);
    deck.control.end_step = args.steps;
    deck.control.summary_frequency = 0;
    deck.control.opts.eps = args.eps;
    deck.control.opts.max_iters = args.max_iters;
    if solver == "ppcg" {
        deck.control.ppcg_halo_depth = 4;
        deck.control.ppcg_inner_steps = 16;
    }
    deck
}

/// Solve wall seconds (sum over steps, excludes assembly/diagnostics).
fn solve_wall(out: &RankOutput) -> f64 {
    out.steps.iter().map(|s| s.wall).sum()
}

/// Exact bitwise equality of two interior temperature fields.
fn bit_identical(a: &Field2D, b: &Field2D) -> bool {
    if a.nx() != b.nx() || a.ny() != b.ny() {
        return false;
    }
    for k in 0..a.ny() as isize {
        for j in 0..a.nx() as isize {
            if a.at(j, k).to_bits() != b.at(j, k).to_bits() {
                return false;
            }
        }
    }
    true
}

struct Row {
    solver: &'static str,
    cells: usize,
    serial_s: f64,
    threaded_s: f64,
    iterations: u64,
    converged: bool,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_s / self.threaded_s
    }
}

fn measure(solver: &str, label: &'static str, cells: usize, args: &Args) -> Row {
    let deck = deck_for(solver, cells, args);

    // discarded warm-up: allocator, page cache, branch predictors
    tea_core::set_num_threads(1);
    let _ = run_serial(&deck).expect("deck runs");

    // alternate serial/threaded reps and keep the minimum of each, so
    // slow outliers (scheduler noise, background load) cannot bias the
    // recorded trajectory toward either configuration
    let mut serial_s = f64::INFINITY;
    let mut threaded_s = f64::INFINITY;
    let mut serial = None;
    let mut threaded = None;
    for _ in 0..args.reps {
        tea_core::set_num_threads(1);
        let run = run_serial(&deck).expect("deck runs");
        serial_s = serial_s.min(solve_wall(&run));
        serial = Some(run);

        tea_core::set_num_threads(args.threads);
        let run = run_serial(&deck).expect("deck runs");
        threaded_s = threaded_s.min(solve_wall(&run));
        threaded = Some(run);
    }
    tea_core::set_num_threads(1);
    let (serial, threaded) = (serial.unwrap(), threaded.unwrap());

    let identical = bit_identical(
        serial.final_u.as_ref().expect("serial gathers the field"),
        threaded.final_u.as_ref().expect("threaded gathers"),
    );
    assert!(
        identical,
        "{label} at {cells}^2: threaded result diverged from serial — determinism contract broken"
    );
    Row {
        solver: label,
        cells,
        serial_s,
        threaded_s,
        iterations: serial.steps.iter().map(|s| s.iterations).sum(),
        converged: serial.steps.iter().all(|s| s.converged),
        bit_identical: identical,
    }
}

/// One measured hot-kernel point of the roofline section.
struct KernelRow {
    name: &'static str,
    cells: usize,
    bytes_per_cell: f64,
    flops_per_cell: f64,
    seconds: f64,
    gbs: f64,
    pct_peak: f64,
    lane_bits_ok: bool,
}

/// Interior bit pattern of a field, for exact lane-vs-scalar comparison.
fn interior_bits(f: &Field2D) -> Vec<u64> {
    let mut bits = Vec::with_capacity(f.nx() * f.ny());
    for k in 0..f.ny() as isize {
        for j in 0..f.nx() as isize {
            bits.push(f.at(j, k).to_bits());
        }
    }
    bits
}

/// Measured streaming peak: a threaded flat-array fused update
/// (`a[i] += b[i] + s·c[i]`, 32 B/element) over arrays far larger than
/// LLC, minimum of `reps` runs. This is the denominator of every
/// percent-of-peak figure — measured on this machine at the same thread
/// count the kernels run with, not quoted from a spec sheet. The
/// read-modify-write form (rather than STREAM's pure-store triad) makes
/// the counted bytes equal the moved bytes: a store-only destination
/// hides a write-allocate read the 24 B/element accounting misses,
/// which would sandbag the peak against kernels that read what they
/// write (axpy, scale_add) and push their percent-of-peak over 100.
fn streaming_peak(threads: usize, reps: usize, smoke: bool) -> f64 {
    let n: usize = if smoke { 1 << 20 } else { 1 << 23 };
    let b = vec![1.5f64; n];
    let c = vec![2.5f64; n];
    let mut a = vec![0.0f64; n];
    let t = threads.max(1);
    let chunk = n.div_ceil(t);
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(2) + 1 {
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for ((ac, bc), cc) in a
                .chunks_mut(chunk)
                .zip(b.chunks(chunk))
                .zip(c.chunks(chunk))
            {
                s.spawn(move || {
                    // zips, not indexing: bounds checks would keep this
                    // loop scalar and sandbag the peak the kernels are
                    // scored against
                    for ((av, &bv), &cv) in ac.iter_mut().zip(bc).zip(cc) {
                        *av += bv + 3.0 * cv;
                    }
                });
            }
        });
        // first run is the page-fault warm-up; keep the min of the rest
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(&a);
    n as f64 * 32.0 / best
}

/// Runs one hot kernel: asserts the threaded lane path is bit-identical
/// to the 1-thread scalar f64 reference, then times it and scores it
/// against the measured streaming peak.
#[allow(clippy::too_many_arguments)]
fn bench_kernel(
    name: &'static str,
    threads: usize,
    reps: usize,
    sweeps: usize,
    cells: f64,
    peak: f64,
    once: &mut dyn FnMut() -> Vec<u64>,
    many: &mut dyn FnMut(usize) -> f64,
) -> KernelRow {
    // 1 thread selects the scalar reference path; >= 2 selects lanes
    tea_core::set_num_threads(1);
    let scalar_bits = once();
    tea_core::set_num_threads(threads.max(2));
    let lane_bits = once();
    let lane_bits_ok = scalar_bits == lane_bits;
    assert!(
        lane_bits_ok,
        "{name}: lane kernel diverged from the scalar f64 reference"
    );

    tea_core::set_num_threads(threads);
    let _ = many(sweeps.div_ceil(4)); // warm-up, discarded
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(many(sweeps) / sweeps as f64);
    }
    tea_core::set_num_threads(1);

    let model = tea_perfmodel::kernel_roofline(name).expect("modelled kernel");
    KernelRow {
        name,
        cells: cells as usize,
        bytes_per_cell: model.bytes_per_cell(8.0),
        flops_per_cell: model.flops_per_cell,
        seconds: best,
        gbs: model.achieved_bandwidth(cells, 8.0, best) / 1e9,
        pct_peak: model.percent_of_peak(cells, 8.0, best, peak),
        lane_bits_ok,
    }
}

/// The per-kernel roofline bench on crooked-pipe coefficients.
fn kernel_bench(args: &Args, peak: f64) -> Vec<KernelRow> {
    use tea_core::{vector, SolveTrace, TileBounds, TileOperator};
    use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Mesh2D};

    let n = args.kernel_cells;
    let halo = 2;
    let problem = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, problem.extent);
    let mut density = Field2D::new(n, n, halo);
    let mut energy = Field2D::new(n, n, halo);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo);
    let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
    let bounds = op.bounds;

    // deterministic, non-uniform inputs so no kernel sees degenerate data
    fn field(n: usize, halo: usize, seed: f64) -> Field2D {
        let mut f = Field2D::new(n, n, halo);
        for k in 0..n as isize {
            let row = f.row_mut(k, 0, n as isize);
            for (j, v) in row.iter_mut().enumerate() {
                *v = 1.0 + seed * ((j % 17) as f64 + (k as usize % 13) as f64) * 1e-3;
            }
        }
        f
    }
    let p = field(n, halo, 1.0);
    let u0 = field(n, halo, 2.0);
    let sweeps = if args.smoke { 8 } else { 24 };
    let cells = (n * n) as f64;
    let reps = args.reps;
    let threads = args.threads;
    let mut rows = Vec::new();

    rows.push(bench_kernel(
        "apply",
        threads,
        reps,
        sweeps,
        cells,
        peak,
        &mut || {
            let mut w = Field2D::new(n, n, halo);
            let mut tr = SolveTrace::new("k");
            op.apply(&p, &mut w, 0, &mut tr);
            interior_bits(&w)
        },
        &mut |s| {
            let mut w = Field2D::new(n, n, halo);
            let mut tr = SolveTrace::new("k");
            let t0 = std::time::Instant::now();
            for _ in 0..s {
                op.apply(&p, &mut w, 0, &mut tr);
            }
            t0.elapsed().as_secs_f64()
        },
    ));

    rows.push(bench_kernel(
        "residual",
        threads,
        reps,
        sweeps,
        cells,
        peak,
        &mut || {
            let mut r = Field2D::new(n, n, halo);
            let mut tr = SolveTrace::new("k");
            op.residual(&p, &u0, &mut r, 0, &mut tr);
            interior_bits(&r)
        },
        &mut |s| {
            let mut r = Field2D::new(n, n, halo);
            let mut tr = SolveTrace::new("k");
            let t0 = std::time::Instant::now();
            for _ in 0..s {
                op.residual(&p, &u0, &mut r, 0, &mut tr);
            }
            t0.elapsed().as_secs_f64()
        },
    ));

    rows.push(bench_kernel(
        "dot",
        threads,
        reps,
        sweeps,
        cells,
        peak,
        &mut || {
            let mut tr = SolveTrace::new("k");
            vec![vector::dot_local(&p, &u0, &bounds, &mut tr).to_bits()]
        },
        &mut |s| {
            let mut tr = SolveTrace::new("k");
            let t0 = std::time::Instant::now();
            let mut acc = 0.0;
            for _ in 0..s {
                acc += vector::dot_local(&p, &u0, &bounds, &mut tr);
            }
            std::hint::black_box(acc);
            t0.elapsed().as_secs_f64()
        },
    ));

    rows.push(bench_kernel(
        "axpy",
        threads,
        reps,
        sweeps,
        cells,
        peak,
        &mut || {
            let mut y = field(n, halo, 3.0);
            let mut tr = SolveTrace::new("k");
            vector::axpy(&mut y, 0.25, &p, &bounds, 0, &mut tr);
            interior_bits(&y)
        },
        &mut |s| {
            let mut y = field(n, halo, 3.0);
            let mut tr = SolveTrace::new("k");
            let t0 = std::time::Instant::now();
            for _ in 0..s {
                vector::axpy(&mut y, 1e-3, &p, &bounds, 0, &mut tr);
            }
            t0.elapsed().as_secs_f64()
        },
    ));

    rows.push(bench_kernel(
        "scale_add",
        threads,
        reps,
        sweeps,
        cells,
        peak,
        &mut || {
            let mut y = field(n, halo, 4.0);
            let mut tr = SolveTrace::new("k");
            vector::scale_add(&mut y, 0.5, 0.5, &p, &bounds, 0, &mut tr);
            interior_bits(&y)
        },
        &mut |s| {
            let mut y = field(n, halo, 4.0);
            let mut tr = SolveTrace::new("k");
            let t0 = std::time::Instant::now();
            for _ in 0..s {
                vector::scale_add(&mut y, 0.5, 0.5, &p, &bounds, 0, &mut tr);
            }
            t0.elapsed().as_secs_f64()
        },
    ));

    rows.push(bench_kernel(
        "fused_cheb",
        threads,
        reps,
        sweeps,
        cells,
        peak,
        &mut || {
            let mut z = field(n, halo, 5.0);
            let mut rr = field(n, halo, 6.0);
            let mut tr = SolveTrace::new("k");
            op.apply_cheb_fused(&p, &mut z, &mut rr, 0, &mut tr);
            let mut bits = interior_bits(&z);
            bits.extend(interior_bits(&rr));
            bits
        },
        &mut |s| {
            let mut z = field(n, halo, 5.0);
            let mut rr = field(n, halo, 6.0);
            let mut tr = SolveTrace::new("k");
            let t0 = std::time::Instant::now();
            for _ in 0..s {
                op.apply_cheb_fused(&p, &mut z, &mut rr, 0, &mut tr);
            }
            t0.elapsed().as_secs_f64()
        },
    ));

    rows
}

/// Modelled bytes/iteration of the fused PPCG inner sweep vs the
/// pre-fusion schedule — the artefact records both so the fusion's
/// traffic saving is a checked number, not a claim.
fn fused_model(inner_steps: usize) -> (f64, f64) {
    let kb = tea_perfmodel::KernelBytes::default();
    let fused = tea_perfmodel::predicted_iteration_bytes("ppcg", inner_steps, &kb);
    let sweep = kb.spmv + 3.0 * kb.vector + kb.precon;
    let unfused = sweep + 2.0 * kb.dot + inner_steps as f64 * sweep;
    assert!(
        fused < unfused,
        "fused Chebyshev sweep must reduce modelled bytes/iteration: {fused} vs {unfused}"
    );
    (fused, unfused)
}

fn write_json(
    args: &Args,
    hw_threads: usize,
    rows: &[Row],
    peak: f64,
    kernels: &[KernelRow],
) -> std::io::Result<()> {
    let inner = 16usize;
    let (fused, unfused) = fused_model(inner);
    let mut f = std::fs::File::create(&args.out)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"speedup\",")?;
    writeln!(f, "  \"pr\": 10,")?;
    writeln!(f, "  \"workload\": \"crooked_pipe\",")?;
    writeln!(f, "  \"hardware_threads\": {hw_threads},")?;
    writeln!(f, "  \"threads\": {},", args.threads)?;
    writeln!(f, "  \"par_threshold\": {},", tea_core::par_threshold())?;
    writeln!(f, "  \"steps\": {},", args.steps)?;
    writeln!(f, "  \"max_iters\": {},", args.max_iters)?;
    writeln!(f, "  \"eps\": {:e},", args.eps)?;
    writeln!(f, "  \"reps\": {},", args.reps)?;
    writeln!(f, "  \"streaming_peak_gbs\": {:.3},", peak / 1e9)?;
    writeln!(f, "  \"kernels\": [")?;
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"kernel\": \"{}\", \"cells\": {}, \"bytes_per_cell\": {}, \
             \"flops_per_cell\": {}, \"seconds\": {:.6e}, \"gbs\": {:.3}, \
             \"pct_streaming_peak\": {:.2}, \"lane_bits_ok\": {}}}{comma}",
            k.name,
            k.cells,
            k.bytes_per_cell,
            k.flops_per_cell,
            k.seconds,
            k.gbs,
            k.pct_peak,
            k.lane_bits_ok,
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(
        f,
        "  \"model\": {{\"ppcg_inner_steps\": {inner}, \
         \"fused_bytes_per_iteration\": {fused}, \
         \"unfused_bytes_per_iteration\": {unfused}}},"
    )?;
    writeln!(f, "  \"results\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"solver\": \"{}\", \"cells\": {}, \"serial_s\": {:.6}, \
             \"threaded_s\": {:.6}, \"speedup\": {:.4}, \"iterations\": {}, \
             \"converged\": {}, \"bit_identical\": {}}}{comma}",
            r.solver,
            r.cells,
            r.serial_s,
            r.threaded_s,
            r.speedup(),
            r.iterations,
            r.converged,
            r.bit_identical,
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    let args = parse_args();
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "speedup: {} hardware thread(s), timing serial (1) vs threaded ({})",
        hw_threads, args.threads
    );
    if hw_threads < args.threads {
        println!(
            "warning: only {hw_threads} hardware thread(s) available — \
             threaded times will not show real speedup on this machine"
        );
    }

    // kernel roofline: measured streaming peak, then the hot kernels
    // scored against it (with the lane-vs-scalar bit-identity gate)
    let peak = streaming_peak(args.threads, args.reps, args.smoke);
    println!(
        "streaming peak (fused update, {} threads): {:.2} GB/s",
        args.threads,
        peak / 1e9
    );
    let kernels = kernel_bench(&args, peak);
    println!(
        "{:>11} {:>8} {:>7} {:>7} {:>12} {:>9} {:>7} {:>6}",
        "kernel", "cells", "B/cell", "F/cell", "s/sweep", "GB/s", "%peak", "bits"
    );
    for k in &kernels {
        println!(
            "{:>11} {:>8} {:>7} {:>7} {:>12.3e} {:>9.2} {:>7.1} {:>6}",
            k.name,
            k.cells,
            k.bytes_per_cell,
            k.flops_per_cell,
            k.seconds,
            k.gbs,
            k.pct_peak,
            if k.lane_bits_ok { "ok" } else { "FAIL" }
        );
    }

    let configs = [("cg", "CG"), ("ppcg", "PPCG-4")];
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>9} {:>7} {:>6}",
        "solver", "cells", "serial(s)", "threaded(s)", "speedup", "iters", "bits"
    );
    for &cells in &args.sizes {
        for (solver, label) in configs {
            let row = measure(solver, label, cells, &args);
            println!(
                "{:>8} {:>8} {:>12.4} {:>12.4} {:>9.3} {:>7} {:>6}",
                row.solver,
                row.cells,
                row.serial_s,
                row.threaded_s,
                row.speedup(),
                row.iterations,
                if row.bit_identical { "ok" } else { "FAIL" }
            );
            rows.push(row);
        }
    }

    write_json(&args, hw_threads, &rows, peak, &kernels).expect("write JSON artefact");
    println!("wrote {}", args.out.display());

    if let Some(required) = args.require_speedup {
        if hw_threads < args.threads {
            println!(
                "require-speedup {required}: SKIPPED — {} worker(s) requested but only \
                 {hw_threads} hardware thread(s) present; no parallel speedup is physically \
                 possible here",
                args.threads
            );
            return;
        }
        let max_cells = rows.iter().map(|r| r.cells).max().unwrap_or(0);
        let cg = rows
            .iter()
            .find(|r| r.solver == "CG" && r.cells == max_cells)
            .expect("CG row at the largest size");
        let got = cg.speedup();
        assert!(
            got >= required,
            "require-speedup: CG at {max_cells}^2 reached {got:.3}x with {} threads, \
             needed {required}x",
            args.threads
        );
        println!("require-speedup {required}: OK — CG at {max_cells}^2 reached {got:.3}x");
    }
}
