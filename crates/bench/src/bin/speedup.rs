//! `speedup` — measures the threaded kernel runtime against exact serial
//! execution and records the result machine-readably.
//!
//! For each mesh size it runs the crooked-pipe deck twice per solver
//! (CG and CPPCG-4): once with 1 worker thread (bit-for-bit the old
//! sequential runtime) and once with the requested worker count. It
//! reports the solve-wall speedup, asserts the two final temperature
//! fields are **bit-identical** (the runtime's determinism contract),
//! and writes everything to a JSON artefact (default `BENCH_PR2.json`)
//! so the performance trajectory of the repository is recorded per PR.
//!
//! ```text
//! cargo run --release -p tea-bench --bin speedup -- \
//!     --sizes 512,1024,2048 --threads 4 --out BENCH_PR2.json
//! ```
//!
//! Timing honesty: the per-step solve is capped at `--max-iters`
//! iterations (default 300) so large meshes time a fixed, identical
//! amount of Krylov work in both configurations instead of waiting for
//! full convergence; the cap, tolerance and convergence flags are all
//! recorded in the artefact. Each configuration runs one discarded
//! warm-up solve (allocator and page-cache first-touch) and then
//! `--reps` timed runs per thread setting, keeping the minimum — the
//! standard defence against one-shot jitter contaminating a trajectory
//! artefact. The hardware thread count is recorded too — a speedup
//! claim from a 1-core container is visibly meaningless.
//!
//! `--require-speedup X` turns the ISSUE's acceptance criterion into a
//! checkable exit status: the CG speedup at the largest measured size
//! must reach `X` when the machine actually has the requested cores
//! (the check is skipped, loudly, when it does not).

use std::io::Write as _;
use std::path::PathBuf;
use tea_app::{crooked_pipe_deck, run_serial, Deck, RankOutput};
use tea_mesh::Field2D;

struct Args {
    sizes: Vec<usize>,
    steps: u64,
    threads: usize,
    max_iters: u64,
    eps: f64,
    reps: usize,
    require_speedup: Option<f64>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = Args {
        sizes: vec![512, 1024, 2048],
        steps: 1,
        threads: hw.max(2),
        max_iters: 300,
        eps: 1e-10,
        reps: 2,
        require_speedup: None,
        out: PathBuf::from("BENCH_PR2.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_default();
        match flag.as_str() {
            "--sizes" => {
                args.sizes = value()
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes"))
                    .collect()
            }
            "--steps" => args.steps = value().parse().expect("--steps"),
            "--threads" => args.threads = value().parse().expect("--threads"),
            "--max-iters" => args.max_iters = value().parse().expect("--max-iters"),
            "--eps" => args.eps = value().parse().expect("--eps"),
            "--reps" => args.reps = value().parse::<usize>().expect("--reps").max(1),
            "--require-speedup" => {
                args.require_speedup = Some(value().parse().expect("--require-speedup"))
            }
            "--out" => args.out = PathBuf::from(value()),
            "--help" | "-h" => {
                println!(
                    "speedup: serial vs threaded solve timing, JSON artefact\n\
                     --sizes a,b,..      mesh sizes per side (default 512,1024,2048)\n\
                     --steps N           time steps per run (default 1)\n\
                     --threads N         threaded worker count (default max(cores, 2))\n\
                     --max-iters N       per-step iteration cap (default 300)\n\
                     --eps E             solver tolerance (default 1e-10)\n\
                     --reps N            timed runs per config, min kept (default 2)\n\
                     --require-speedup X fail unless CG at the largest size reaches X\n\
                     \x20                   (skipped when the hardware lacks the cores)\n\
                     --out FILE          JSON artefact path (default BENCH_PR2.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn deck_for(solver: &str, cells: usize, args: &Args) -> Deck {
    let mut deck = crooked_pipe_deck(cells, solver);
    deck.control.end_step = args.steps;
    deck.control.summary_frequency = 0;
    deck.control.opts.eps = args.eps;
    deck.control.opts.max_iters = args.max_iters;
    if solver == "ppcg" {
        deck.control.ppcg_halo_depth = 4;
        deck.control.ppcg_inner_steps = 16;
    }
    deck
}

/// Solve wall seconds (sum over steps, excludes assembly/diagnostics).
fn solve_wall(out: &RankOutput) -> f64 {
    out.steps.iter().map(|s| s.wall).sum()
}

/// Exact bitwise equality of two interior temperature fields.
fn bit_identical(a: &Field2D, b: &Field2D) -> bool {
    if a.nx() != b.nx() || a.ny() != b.ny() {
        return false;
    }
    for k in 0..a.ny() as isize {
        for j in 0..a.nx() as isize {
            if a.at(j, k).to_bits() != b.at(j, k).to_bits() {
                return false;
            }
        }
    }
    true
}

struct Row {
    solver: &'static str,
    cells: usize,
    serial_s: f64,
    threaded_s: f64,
    iterations: u64,
    converged: bool,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_s / self.threaded_s
    }
}

fn measure(solver: &str, label: &'static str, cells: usize, args: &Args) -> Row {
    let deck = deck_for(solver, cells, args);

    // discarded warm-up: allocator, page cache, branch predictors
    tea_core::set_num_threads(1);
    let _ = run_serial(&deck).expect("deck runs");

    // alternate serial/threaded reps and keep the minimum of each, so
    // slow outliers (scheduler noise, background load) cannot bias the
    // recorded trajectory toward either configuration
    let mut serial_s = f64::INFINITY;
    let mut threaded_s = f64::INFINITY;
    let mut serial = None;
    let mut threaded = None;
    for _ in 0..args.reps {
        tea_core::set_num_threads(1);
        let run = run_serial(&deck).expect("deck runs");
        serial_s = serial_s.min(solve_wall(&run));
        serial = Some(run);

        tea_core::set_num_threads(args.threads);
        let run = run_serial(&deck).expect("deck runs");
        threaded_s = threaded_s.min(solve_wall(&run));
        threaded = Some(run);
    }
    tea_core::set_num_threads(1);
    let (serial, threaded) = (serial.unwrap(), threaded.unwrap());

    let identical = bit_identical(
        serial.final_u.as_ref().expect("serial gathers the field"),
        threaded.final_u.as_ref().expect("threaded gathers"),
    );
    assert!(
        identical,
        "{label} at {cells}^2: threaded result diverged from serial — determinism contract broken"
    );
    Row {
        solver: label,
        cells,
        serial_s,
        threaded_s,
        iterations: serial.steps.iter().map(|s| s.iterations).sum(),
        converged: serial.steps.iter().all(|s| s.converged),
        bit_identical: identical,
    }
}

fn write_json(args: &Args, hw_threads: usize, rows: &[Row]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(&args.out)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench\": \"speedup\",")?;
    writeln!(f, "  \"pr\": 2,")?;
    writeln!(f, "  \"workload\": \"crooked_pipe\",")?;
    writeln!(f, "  \"hardware_threads\": {hw_threads},")?;
    writeln!(f, "  \"threads\": {},", args.threads)?;
    writeln!(f, "  \"par_threshold\": {},", tea_core::par_threshold())?;
    writeln!(f, "  \"steps\": {},", args.steps)?;
    writeln!(f, "  \"max_iters\": {},", args.max_iters)?;
    writeln!(f, "  \"eps\": {:e},", args.eps)?;
    writeln!(f, "  \"reps\": {},", args.reps)?;
    writeln!(f, "  \"results\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"solver\": \"{}\", \"cells\": {}, \"serial_s\": {:.6}, \
             \"threaded_s\": {:.6}, \"speedup\": {:.4}, \"iterations\": {}, \
             \"converged\": {}, \"bit_identical\": {}}}{comma}",
            r.solver,
            r.cells,
            r.serial_s,
            r.threaded_s,
            r.speedup(),
            r.iterations,
            r.converged,
            r.bit_identical,
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    let args = parse_args();
    let hw_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "speedup: {} hardware thread(s), timing serial (1) vs threaded ({})",
        hw_threads, args.threads
    );
    if hw_threads < args.threads {
        println!(
            "warning: only {hw_threads} hardware thread(s) available — \
             threaded times will not show real speedup on this machine"
        );
    }

    let configs = [("cg", "CG"), ("ppcg", "PPCG-4")];
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>9} {:>7} {:>6}",
        "solver", "cells", "serial(s)", "threaded(s)", "speedup", "iters", "bits"
    );
    for &cells in &args.sizes {
        for (solver, label) in configs {
            let row = measure(solver, label, cells, &args);
            println!(
                "{:>8} {:>8} {:>12.4} {:>12.4} {:>9.3} {:>7} {:>6}",
                row.solver,
                row.cells,
                row.serial_s,
                row.threaded_s,
                row.speedup(),
                row.iterations,
                if row.bit_identical { "ok" } else { "FAIL" }
            );
            rows.push(row);
        }
    }

    write_json(&args, hw_threads, &rows).expect("write JSON artefact");
    println!("wrote {}", args.out.display());

    if let Some(required) = args.require_speedup {
        if hw_threads < args.threads {
            println!(
                "require-speedup {required}: SKIPPED — {} worker(s) requested but only \
                 {hw_threads} hardware thread(s) present; no parallel speedup is physically \
                 possible here",
                args.threads
            );
            return;
        }
        let max_cells = rows.iter().map(|r| r.cells).max().unwrap_or(0);
        let cg = rows
            .iter()
            .find(|r| r.solver == "CG" && r.cells == max_cells)
            .expect("CG row at the largest size");
        let got = cg.speedup();
        assert!(
            got >= required,
            "require-speedup: CG at {max_cells}^2 reached {got:.3}x with {} threads, \
             needed {required}x",
            args.threads
        );
        println!("require-speedup {required}: OK — CG at {max_cells}^2 reached {got:.3}x");
    }
}
