//! Figure 3 — the crooked-pipe temperature field.
//!
//! Runs the crooked-pipe deck to the configured end time and writes the
//! temperature heat map (PPM) plus the raw field (CSV). The paper shows
//! the 4000² domain after 15 µs (375 steps of Δt = 0.04 µs); the default
//! here is a 256² / 60-step rendering of the same physics — pass
//! `--cells 4000 --steps 375` for the full-size figure if you have the
//! patience.
//!
//! `cargo run --release -p tea-bench --bin fig3 [-- --cells N --steps N]`

use tea_app::{crooked_pipe_deck, run_serial, write_field_csv, write_field_ppm};
use tea_bench::FigArgs;

fn main() {
    let args = FigArgs::parse("fig3", 256, 60);
    let mut deck = crooked_pipe_deck(args.cells, "ppcg");
    deck.control.end_step = args.steps;
    deck.control.ppcg_halo_depth = 4;
    deck.control.summary_frequency = args.steps / 4;

    println!(
        "Fig. 3: crooked pipe, {0}x{0} cells, {1} steps of dt = {2} (t_end = {3:.2} µs)",
        args.cells,
        args.steps,
        deck.control.dt,
        args.steps as f64 * deck.control.dt
    );

    let out = run_serial(&deck).expect("deck runs");
    for s in &out.steps {
        if let Some(sum) = s.summary {
            println!(
                "  step {:>4}  t = {:>7.2}  iters = {:>4}  avg T = {:.8}",
                s.step,
                s.time,
                s.iterations,
                sum.average_temperature()
            );
        }
    }

    let u = out.final_u.expect("serial run returns the field");
    let ppm = args.out_dir.join("fig3_crooked_pipe.ppm");
    let csv = args.out_dir.join("fig3_crooked_pipe.csv");
    let vtk = args.out_dir.join("fig3_crooked_pipe.vtk");
    write_field_ppm(&u, &ppm).expect("ppm");
    write_field_csv(&u, &csv).expect("csv");
    tea_app::write_field_vtk(&u, &vtk, "temperature").expect("vtk");

    // the qualitative content of the figure: heat escapes the source and
    // runs along the pipe, leaving the wall cold
    let n = args.cells as isize;
    let probes = [
        ("inlet (source)", n / 20, n * 3 / 20),
        ("mid-pipe rising leg", n * 3 / 10, n * 4 / 10),
        ("upper leg", n / 2, n * 11 / 20),
        ("outlet leg", n * 4 / 5, n / 4),
        ("far wall", n - 2, n - 2),
    ];
    println!("\nprobe temperatures (u = ρe):");
    let mut last = f64::INFINITY;
    for (name, j, k) in probes {
        let v = u.at(j, k);
        println!("  {name:<22} u({j:>4},{k:>4}) = {v:.6e}");
        if name != "far wall" {
            last = v;
        } else {
            assert!(v < last, "wall must stay colder than the pipe outlet");
        }
    }
    println!("\nwrote {} and {}", ppm.display(), csv.display());
}
