//! Whole-solve benchmarks (B2): CG vs Chebyshev vs CPPCG on one implicit
//! crooked-pipe step, plus the block-Jacobi ablation. Solvers are built
//! once through the registry and driven through the `IterativeSolver`
//! trait, exactly as the application driver does.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tea_comms::{Communicator, HaloLayout, SerialComm};
use tea_core::{
    crooked_pipe_system, DynTile, PreconKind, SolveContext, SolveOpts, SolveTrace, SolverParams,
    SolverRegistry, Tile, Workspace,
};
use tea_mesh::Decomposition2D;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_96");
    group.sample_size(10);
    let n = 96;
    let (op, rhs) = crooked_pipe_system(n, 0.04, 8);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(n, n, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
    let ctx = SolveContext::new(&tile);
    let opts = SolveOpts::with_eps(1e-8);
    let registry = SolverRegistry::builtin();

    // (bench name, registry name, params override)
    let configs: Vec<(String, &str, SolverParams)> = vec![
        ("cg".into(), "cg", SolverParams::default()),
        (
            "cg_block_jacobi".into(),
            "cg",
            SolverParams {
                precon: PreconKind::BlockJacobi,
                ..Default::default()
            },
        ),
        (
            "cg_fused_reductions".into(),
            "cg_fused",
            SolverParams::default(),
        ),
        (
            "chebyshev".into(),
            "chebyshev",
            SolverParams {
                presteps: 30,
                ..Default::default()
            },
        ),
        (
            "ppcg_depth1".into(),
            "ppcg",
            SolverParams {
                halo_depth: 1,
                ..Default::default()
            },
        ),
        (
            "ppcg_depth8".into(),
            "ppcg",
            SolverParams {
                halo_depth: 8,
                ..Default::default()
            },
        ),
    ];

    for (bench_name, solver_name, params) in configs {
        let mut solver = registry
            .create(solver_name, &params)
            .expect("builtin solver");
        solver.prepare(&ctx, &opts);
        let halo = solver.halo_depth();
        group.bench_function(bench_name, |b| {
            b.iter(|| {
                let mut ws = Workspace::new(n, n, halo);
                let mut u = rhs.clone();
                let mut trace = SolveTrace::new(solver.label());
                black_box(solver.solve(&ctx, &mut u, &rhs, &mut ws, &mut trace))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
