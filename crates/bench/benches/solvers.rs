//! Whole-solve benchmarks (B2): CG vs Chebyshev vs CPPCG on one implicit
//! crooked-pipe step, plus the block-Jacobi ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tea_comms::{HaloLayout, SerialComm};
use tea_core::{
    cg_fused_solve, cg_solve, chebyshev_solve, ppcg_solve, ChebyOpts, PpcgOpts, PreconKind,
    Preconditioner, SolveOpts, Tile, TileBounds, TileOperator, Workspace,
};
use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D};

struct Setup {
    op: TileOperator,
    b: Field2D,
    n: usize,
}

fn setup(n: usize, halo: usize) -> Setup {
    let problem = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, problem.extent);
    let mut density = Field2D::new(n, n, halo);
    let mut energy = Field2D::new(n, n, halo);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo);
    let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
    let mut b = Field2D::new(n, n, halo);
    for k in 0..n as isize {
        for j in 0..n as isize {
            b.set(j, k, density.at(j, k) * energy.at(j, k));
        }
    }
    Setup { op, b, n }
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_96");
    group.sample_size(10);
    let s = setup(96, 8);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(s.n, s.n, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile = Tile::new(&s.op, &layout, &comm);
    let opts = SolveOpts::with_eps(1e-8);
    let ident = Preconditioner::setup(PreconKind::None, &s.op, 0);
    let block = Preconditioner::setup(PreconKind::BlockJacobi, &s.op, 0);

    group.bench_function("cg", |b| {
        b.iter(|| {
            let mut ws = Workspace::new(s.n, s.n, 1);
            let mut u = s.b.clone();
            black_box(cg_solve(&tile, &mut u, &s.b, &ident, &mut ws, opts))
        })
    });
    group.bench_function("cg_block_jacobi", |b| {
        b.iter(|| {
            let mut ws = Workspace::new(s.n, s.n, 1);
            let mut u = s.b.clone();
            black_box(cg_solve(&tile, &mut u, &s.b, &block, &mut ws, opts))
        })
    });
    group.bench_function("cg_fused_reductions", |b| {
        b.iter(|| {
            let mut ws = Workspace::new(s.n, s.n, 1);
            let mut u = s.b.clone();
            black_box(cg_fused_solve(&tile, &mut u, &s.b, &ident, &mut ws, opts))
        })
    });
    group.bench_function("chebyshev", |b| {
        b.iter(|| {
            let mut ws = Workspace::new(s.n, s.n, 1);
            let mut u = s.b.clone();
            black_box(chebyshev_solve(
                &tile,
                &mut u,
                &s.b,
                &ident,
                &mut ws,
                opts,
                ChebyOpts::default(),
            ))
        })
    });
    for depth in [1usize, 8] {
        group.bench_function(format!("ppcg_depth{depth}"), |b| {
            b.iter(|| {
                let mut ws = Workspace::new(s.n, s.n, depth);
                let mut u = s.b.clone();
                black_box(ppcg_solve(
                    &tile,
                    &mut u,
                    &s.b,
                    &ident,
                    &mut ws,
                    opts,
                    PpcgOpts::with_depth(depth),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
