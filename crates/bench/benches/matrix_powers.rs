//! Matrix-powers ablation (B3): extended-bounds stencil sweeps — the
//! redundant-work cost the paper trades against communication — across
//! extensions, plus a full CPPCG inner-solve depth sweep on real ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tea_core::{SolveTrace, TileBounds, TileOperator};
use tea_mesh::{
    crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Extent2D, Field2D, Mesh2D,
};

/// An interior tile (all sides extensible) from a 3x3 decomposition.
fn interior_tile(n: usize, halo: usize) -> (TileOperator, Field2D, Field2D) {
    let problem = crooked_pipe(3 * n);
    let d = Decomposition2D::with_grid(3 * n, 3 * n, 3, 3);
    let mesh = Mesh2D::new(&d, 4, problem.extent); // centre tile
    let mut density = Field2D::new(n, n, halo);
    let mut energy = Field2D::new(n, n, halo);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo);
    let op = TileOperator::new(coeffs, TileBounds::new(&mesh, halo));
    let mut p = Field2D::filled(n, n, halo, 1.0);
    for k in -(halo as isize)..(n + halo) as isize {
        for j in -(halo as isize)..(n + halo) as isize {
            p.set(j, k, ((j * 3 + k) % 5) as f64);
        }
    }
    let w = Field2D::new(n, n, halo);
    (op, p, w)
}

fn bench_extended_sweeps(c: &mut Criterion) {
    let mut group = c.benchmark_group("extended_spmv_128");
    group.sample_size(30);
    let halo = 16;
    let (op, p, mut w) = interior_tile(128, halo + 1);
    let mut trace = SolveTrace::new("bench");
    for ext in [0usize, 4, 8, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(ext), &ext, |b, &e| {
            b.iter(|| {
                op.apply(&p, &mut w, e, &mut trace);
                black_box(&w);
            })
        });
    }
    group.finish();
}

fn bench_halo_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_pack_512");
    group.sample_size(30);
    let f = Field2D::filled(512, 512, 16, 1.5);
    for depth in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| black_box(f.pack_rect(0, d as isize, 0, 512)))
        });
    }
    group.finish();
}

fn bench_extent_geometry(c: &mut Criterion) {
    // pure bookkeeping cost of bounds clamping (should be ~free)
    let mut group = c.benchmark_group("bounds");
    let d = Decomposition2D::with_grid(384, 384, 3, 3);
    let mesh = Mesh2D::new(&d, 4, Extent2D::unit());
    let bounds = TileBounds::new(&mesh, 16);
    group.bench_function("range_clamp", |b| {
        b.iter(|| {
            let mut acc = 0isize;
            for e in 0..16usize {
                let (a, bb, cc, dd) = bounds.range(e);
                acc += a + bb + cc + dd;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extended_sweeps,
    bench_halo_pack,
    bench_extent_geometry
);
criterion_main!(benches);
