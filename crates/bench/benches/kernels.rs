//! Kernel micro-benchmarks (B1): the fused SpMV+dot sweep of the paper's
//! Listing 1 versus a split sweep + separate dot, vector kernels, and
//! preconditioner applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tea_core::{vector, PreconKind, Preconditioner, SolveTrace, TileBounds, TileOperator};
use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Field2D, Mesh2D};

fn setup(n: usize) -> (TileOperator, Field2D, Field2D) {
    let problem = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, problem.extent);
    let mut density = Field2D::new(n, n, 1);
    let mut energy = Field2D::new(n, n, 1);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, 1);
    let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
    let mut p = Field2D::new(n, n, 1);
    for k in 0..n as isize {
        for j in 0..n as isize {
            p.set(j, k, ((j * 31 + k * 7) % 13) as f64 / 7.0);
        }
    }
    let w = Field2D::new(n, n, 1);
    (op, p, w)
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(20);
    for &n in &[128usize, 256, 512] {
        let (op, p, mut w) = setup(n);
        let mut trace = SolveTrace::new("bench");
        group.bench_with_input(BenchmarkId::new("fused_dot", n), &n, |b, _| {
            b.iter(|| black_box(op.apply_fused_dot(&p, &mut w, &mut trace)))
        });
        group.bench_with_input(BenchmarkId::new("split", n), &n, |b, _| {
            b.iter(|| {
                op.apply(&p, &mut w, 0, &mut trace);
                black_box(vector::dot_local(&p, &w, &op.bounds, &mut trace))
            })
        });
    }
    group.finish();
}

fn bench_vector_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector");
    group.sample_size(20);
    let n = 256;
    let (op, p, mut w) = setup(n);
    let mut trace = SolveTrace::new("bench");
    group.bench_function("axpy_256", |b| {
        b.iter(|| vector::axpy(&mut w, 1.0001, &p, &op.bounds, 0, &mut trace))
    });
    group.bench_function("xpay_256", |b| {
        b.iter(|| vector::xpay(&mut w, &p, 0.999, &op.bounds, 0, &mut trace))
    });
    group.bench_function("dot_256", |b| {
        b.iter(|| black_box(vector::dot_local(&p, &w, &op.bounds, &mut trace)))
    });
    group.finish();
}

fn bench_preconditioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("precon");
    group.sample_size(20);
    let n = 256;
    let (op, p, mut w) = setup(n);
    let mut trace = SolveTrace::new("bench");
    for kind in [PreconKind::Diagonal, PreconKind::BlockJacobi] {
        let m = Preconditioner::setup(kind, &op, 0);
        group.bench_function(format!("{}_256", kind.label()), |b| {
            b.iter(|| m.apply(&p, &mut w, &op.bounds, 0, &mut trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_vector_ops, bench_preconditioners);
criterion_main!(benches);
