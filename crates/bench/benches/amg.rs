//! Multigrid baseline benchmarks (B5): hierarchy setup cost (the
//! BoomerAMG pain point the paper cites), single V-cycles, and the full
//! AMG-PCG solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tea_amg::{MgHierarchy, MgOpts, MgTrace};
use tea_mesh::{crooked_pipe, timestep_scalings, Coefficient, Field2D, Mesh2D};

fn pipe_density(n: usize) -> (Field2D, f64, f64, Coefficient) {
    let p = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, p.extent);
    let mut density = Field2D::new(n, n, 1);
    let mut energy = Field2D::new(n, n, 1);
    p.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    (density, rx, ry, p.coefficient)
}

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("mg_setup");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let (d, rx, ry, kind) = pipe_density(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(MgHierarchy::build(&d, kind, rx, ry, MgOpts::default())))
        });
    }
    group.finish();
}

fn bench_vcycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("mg_vcycle");
    group.sample_size(20);
    for &n in &[128usize, 256] {
        let (d, rx, ry, kind) = pipe_density(n);
        let mut h = MgHierarchy::build(&d, kind, rx, ry, MgOpts::default());
        let mut r = Field2D::new(n, n, 1);
        for k in 0..n as isize {
            for j in 0..n as isize {
                r.set(j, k, ((j + 2 * k) % 7) as f64 - 3.0);
            }
        }
        let mut z = Field2D::new(n, n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut trace = MgTrace::default();
                h.vcycle(&r, &mut z, &mut trace);
                black_box(&z);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_setup, bench_vcycle);
criterion_main!(benches);
