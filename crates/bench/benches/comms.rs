//! Communication benchmarks (B4): deterministic reductions and fused
//! deep-halo exchanges on real threaded ranks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tea_comms::{exchange_halo_many, run_threaded, Communicator, HaloLayout};
use tea_mesh::{Decomposition2D, Field2D};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for ranks in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("sum_100x", ranks), &ranks, |b, &r| {
            b.iter(|| {
                // includes thread spawn; the loop amortises it so the
                // reduction rendezvous dominates
                let res = run_threaded(r, |comm| {
                    let mut acc = 0.0;
                    for i in 0..100 {
                        acc += comm.allreduce_sum(i as f64 + comm.rank() as f64);
                    }
                    acc
                });
                black_box(res)
            })
        });
    }
    group.finish();
}

fn bench_halo_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_exchange_2ranks_256");
    group.sample_size(10);
    let d = Decomposition2D::with_grid(512, 256, 2, 1);
    for depth in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &dep| {
            b.iter(|| {
                run_threaded(2, |comm| {
                    let layout = HaloLayout::new(&d, comm.rank());
                    let mut f = Field2D::filled(256, 256, dep, 1.0);
                    // 20 exchanges per spawn to amortise thread startup
                    for _ in 0..20 {
                        let mut fields = [&mut f];
                        exchange_halo_many(&mut fields, &layout, comm, dep);
                    }
                    comm.stats().snapshot().bytes_sent()
                })
            })
        });
    }
    group.finish();
}

fn bench_fused_fields(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_fields_depth2");
    group.sample_size(10);
    let d = Decomposition2D::with_grid(512, 256, 2, 1);
    for nfields in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(nfields), &nfields, |b, &nf| {
            b.iter(|| {
                run_threaded(2, |comm| {
                    let layout = HaloLayout::new(&d, comm.rank());
                    let mut fs: Vec<Field2D> =
                        (0..nf).map(|_| Field2D::filled(256, 256, 2, 1.0)).collect();
                    for _ in 0..20 {
                        let mut refs: Vec<&mut Field2D> = fs.iter_mut().collect();
                        exchange_halo_many(&mut refs, &layout, comm, 2);
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allreduce,
    bench_halo_exchange,
    bench_fused_fields
);
criterion_main!(benches);
