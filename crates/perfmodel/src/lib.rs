//! # tea-perfmodel — petascale machines, on a laptop
//!
//! The paper's evaluation is strong scaling of a fixed 4000² problem on
//! Titan (8,192 K20x GPUs, Cray Gemini), Piz Daint (2,048 K20x, Cray
//! Aries) and Spruce (E5-2680v2, SGI ICE-X). Those machines are not
//! available to a reproduction, so this crate substitutes calibrated
//! analytic models ([`machines`]) and a trace-replay simulator
//! ([`scaling`]): `tea-core` solvers record their exact
//! computation/communication protocol ([`tea_core::SolveTrace`]) from a
//! real run, and the simulator prices that protocol on a modelled
//! machine at any node count.
//!
//! What the model is designed to reproduce (and what the tests pin
//! down): the CG-vs-CPPCG scaling gap, the matrix-powers depth ordering,
//! Titan's ~1k-node knee for the 4000² mesh, Piz Daint's interconnect
//! advantage at 2,048 nodes, Spruce's super-linear cache window, and the
//! BoomerAMG baseline's early strong-scaling collapse.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod machines;
pub mod roofline;
pub mod scaling;

pub use machines::{
    all_machines, piz_daint, spruce_hybrid, spruce_mpi, titan, Machine, NetworkModel, NodeModel,
};
pub use roofline::{kernel_roofline, KernelRoofline, HOT_KERNELS};
pub use scaling::{
    node_counts, predict, predict_amg, predict_width, predicted_iteration_bytes, solver_elem_bytes,
    KernelBytes, ScalingPoint, ScalingSeries,
};
