//! The strong-scaling simulator: replays a measured [`SolveTrace`] on a
//! modelled [`Machine`] at any node count.
//!
//! The key property making this valid (DESIGN.md §3): a solve's
//! *protocol* — iteration counts, sweeps per iteration, exchanges per
//! sweep, reductions per iteration — is decomposition-independent (the
//! global problem is fixed; only tile sizes change with node count). The
//! trace is measured once from a real run of the real solver; the model
//! supplies per-event costs:
//!
//! * **kernel sweep**: `cells × bytes/cell / bw_eff + sweep_overhead`,
//!   where extended (matrix-powers) sweeps cover `(nx+2e)(ny+2e)` cells —
//!   the redundant-work term — and `bw_eff` includes the cache model
//!   (Spruce's super-linear region);
//! * **halo exchange**: two α-β phases (x then y), plus PCIe hops on GPU
//!   machines;
//! * **global reduction**: `2·log₂(R)` tree hops — the term that makes
//!   plain CG stop scaling first (paper §III.A).

use crate::machines::Machine;
use serde::{Deserialize, Serialize};
use tea_amg::MgTrace;
use tea_core::SolveTrace;
use tea_mesh::{choose_process_grid, split_extent};

/// Modelled bytes moved per cell per sweep, by kernel class.
///
/// Every field is `elements-per-cell × element-width`; the defaults are
/// the f64 (8-byte) figures. Use [`KernelBytes::for_width`] to price the
/// same kernel schedule at another precision — f32 sweeps move exactly
/// half the bytes of their f64 counterparts, element counts unchanged.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelBytes {
    /// Fused stencil: load `p` (5-point, cached ≈ 2 elems), `Kx`, `Ky`,
    /// store `w` — 5 elements/cell.
    pub spmv: f64,
    /// axpy-class: two loads + one store — 3 elements/cell.
    pub vector: f64,
    /// dot: two loads — 2 elements/cell.
    pub dot: f64,
    /// preconditioner apply: two loads + one store (diag) / block sweeps
    /// — 4 elements/cell.
    pub precon: f64,
    /// *Additional* traffic of a fused Chebyshev sweep
    /// ([`tea_core::TileOperator::apply_cheb_fused`]) over the plain stencil
    /// it is counted alongside: `z` and `rr` read-modify-writes (+4
    /// elems) minus the `w` store the stencil class still charges but
    /// the fused pass never issues (−1 elem) — 3 elements/cell. One
    /// fused pass therefore prices at `spmv + fused_update` = 8
    /// elements/cell, against 11 for the unfused apply + two axpys.
    pub fused_update: f64,
}

impl KernelBytes {
    /// Per-cell element counts of each kernel class (see field docs).
    const ELEMS: [f64; 5] = [5.0, 3.0, 2.0, 4.0, 3.0];

    /// Kernel-class bytes at a given element width in bytes (8 for f64,
    /// 4 for f32). `for_width(8.0)` equals `KernelBytes::default()`.
    pub fn for_width(elem_bytes: f64) -> Self {
        let [spmv, vector, dot, precon, fused_update] = Self::ELEMS.map(|e| e * elem_bytes);
        KernelBytes {
            spmv,
            vector,
            dot,
            precon,
            fused_update,
        }
    }
}

impl Default for KernelBytes {
    fn default() -> Self {
        KernelBytes::for_width(8.0)
    }
}

/// One predicted point of a strong-scaling curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: usize,
    /// Total ranks (nodes × ranks-per-node).
    pub ranks: usize,
    /// Per-rank tile of the fine grid `(nx, ny)`.
    pub tile: (usize, usize),
    /// Kernel time, seconds.
    pub compute: f64,
    /// Halo-exchange time, seconds.
    pub halo: f64,
    /// Global-reduction time, seconds.
    pub reduction: f64,
    /// Multigrid setup time (AMG only), seconds.
    pub setup: f64,
}

impl ScalingPoint {
    /// Total modelled time-to-solution.
    pub fn total(&self) -> f64 {
        self.compute + self.halo + self.reduction + self.setup
    }
}

/// The largest tile of an `R`-rank decomposition of `global`.
fn worst_tile(global: (usize, usize), ranks: usize) -> (usize, usize) {
    let (gnx, gny) = global;
    let (px, py) = choose_process_grid(ranks.min(gnx * gny), gnx, gny);
    let (_, nx) = split_extent(gnx, px, 0); // first pieces are the long ones
    let (_, ny) = split_extent(gny, py, 0);
    (nx, ny)
}

fn log2_ceil(r: usize) -> f64 {
    if r <= 1 {
        0.0
    } else {
        (r as f64).log2().ceil()
    }
}

/// Cost of one kernel sweep of `cells` cells at `bytes_per_cell`.
fn sweep_time(m: &Machine, cells: f64, bytes_per_cell: f64, working_set: f64) -> f64 {
    cells * bytes_per_cell / m.effective_bandwidth(working_set) + m.node.sweep_overhead
}

/// Cost of one fused halo exchange at `depth` with `nfields` fields of
/// `elem_bytes`-wide elements on an `nx × ny` tile: two α-β phases
/// (topology-routed) plus PCIe hops on accelerators.
///
/// Halo payloads are precision-native (an f32 leg exchanges 4-byte
/// faces), so the wire bytes must scale with the element width — the
/// old model hardcoded `* 8.0` and overcharged reduced-precision legs
/// by 2×.
fn halo_time(
    m: &Machine,
    ranks: usize,
    tile: (usize, usize),
    depth: f64,
    nfields: f64,
    elem_bytes: f64,
) -> f64 {
    let (nx, ny) = (tile.0 as f64, tile.1 as f64);
    // halo neighbours are topologically close; charge injection latency
    // plus a small share of the machine route
    let alpha = m.net.latency + 0.25 * m.net.topology.route_extra(ranks);
    let phase = |elems: f64| -> f64 {
        let bytes = elems * elem_bytes * nfields;
        alpha
            + bytes / m.net.bandwidth
            + 2.0 * (m.node.host_link_latency + bytes / m.node.host_link_bandwidth)
    };
    phase(depth * ny) + phase(depth * (nx + 2.0 * depth))
}

/// Cost of one allreduce of `elements` scalars of `elem_bytes` width
/// over `ranks` ranks: a reduce + broadcast tree of `2·log₂(R)` hops,
/// each crossing real machine distance, plus one device sync on
/// accelerators.
fn reduction_time(m: &Machine, ranks: usize, elements: f64, elem_bytes: f64) -> f64 {
    let hops = 2.0 * log2_ceil(ranks);
    hops * m.net.tree_hop(ranks)
        + elements * elem_bytes / m.net.bandwidth
        + 2.0 * m.node.host_link_latency
}

/// Replays a solver trace on `machine` at `nodes` nodes for a fixed
/// `global` mesh, with f64 (8-byte) communication payloads.
///
/// Shorthand for [`predict_width`] at `elem_bytes = 8.0`; use
/// `predict_width` to price reduced-precision legs honestly.
pub fn predict(
    machine: &Machine,
    trace: &SolveTrace,
    global: (usize, usize),
    nodes: usize,
    bytes: KernelBytes,
) -> ScalingPoint {
    predict_width(machine, trace, global, nodes, bytes, 8.0)
}

/// Replays a solver trace on `machine` at `nodes` nodes for a fixed
/// `global` mesh, with every element — field working sets, halo faces,
/// reduction payloads — `elem_bytes` wide.
///
/// `elem_bytes` is the in-memory width of one mesh element: 8 for f64
/// solves, 4 for f32 / the inner leg of the mixed methods. Pass a
/// matching [`KernelBytes::for_width`] so the sweep classes and the
/// communication terms price the same precision.
pub fn predict_width(
    machine: &Machine,
    trace: &SolveTrace,
    global: (usize, usize),
    nodes: usize,
    bytes: KernelBytes,
    elem_bytes: f64,
) -> ScalingPoint {
    let ranks = nodes * machine.ranks_per_node;
    let tile = worst_tile(global, ranks);
    let (nx, ny) = (tile.0 as f64, tile.1 as f64);
    let working_set = nx * ny * machine.resident_fields as f64 * elem_bytes;

    let mut compute = 0.0;
    let sweep_classes: [(&tea_core::KernelCounts, f64); 5] = [
        (&trace.spmv, bytes.spmv),
        (&trace.vector_ops, bytes.vector),
        (&trace.dot_kernels, bytes.dot),
        (&trace.precon_ops, bytes.precon),
        (&trace.fused_updates, bytes.fused_update),
    ];
    for (counts, b) in sweep_classes {
        for (&e, &n) in &counts.sweeps_by_extension {
            let e = e as f64;
            let cells = (nx + 2.0 * e) * (ny + 2.0 * e);
            compute += n as f64 * sweep_time(machine, cells, b, working_set);
        }
    }

    let mut halo = 0.0;
    for (&(depth, nfields), &n) in &trace.halo_exchanges {
        halo += n as f64
            * halo_time(
                machine,
                ranks,
                tile,
                depth as f64,
                nfields as f64,
                elem_bytes,
            );
    }

    let per_elem = if trace.reductions > 0 {
        trace.reduction_elements as f64 / trace.reductions as f64
    } else {
        0.0
    };
    let reduction = trace.reductions as f64 * reduction_time(machine, ranks, per_elem, elem_bytes);

    ScalingPoint {
        nodes,
        ranks,
        tile,
        compute,
        halo,
        reduction,
        setup: 0.0,
    }
}

/// Static per-cell bytes moved per *counted* iteration for a named
/// solver configuration — the auto-tuner's a-priori cost model.
///
/// Where [`predict`] replays a measured trace, this prices one iteration
/// of each method from the kernel schedule alone, before anything runs:
/// the tuner orders its candidate search by this prior, and the tuning
/// bench weights measured iteration counts by it. Per-iteration kernel
/// mix by family (one stencil sweep plus the recurrence updates; the
/// reduction-avoiding methods drop the dots; the PPCG/mixed families add
/// `inner_steps` smoothing sweeps per outer iteration). Reduced-precision
/// sweeps count half the bytes (their 4-byte elements move exactly half
/// the traffic of the 8-byte schedule in `bytes` — see
/// [`solver_elem_bytes`]); the mixed methods add one conversion sweep
/// for the demote/promote round trip. The Chebyshev-smoothed inner
/// sweeps (`ppcg`, `mixed_ppcg`, `mixed_chebyshev`) are priced fused:
/// one stencil + [`KernelBytes::fused_update`] + the fused recurrence
/// (precon-class) per step, instead of stencil + three separate vector
/// passes + precon.
pub fn predicted_iteration_bytes(solver: &str, inner_steps: usize, bytes: &KernelBytes) -> f64 {
    let m = inner_steps.max(1) as f64;
    let sweep = bytes.spmv + 3.0 * bytes.vector + bytes.precon;
    // fused Chebyshev inner step: apply_cheb_fused folds the stencil and
    // both vector updates into one pass, and the recurrence folds the
    // preconditioner apply + scale_add into one precon-class pass
    let fused_step = bytes.spmv + bytes.fused_update + bytes.precon;
    match solver {
        "jacobi" => bytes.spmv + bytes.vector,
        "cg" | "cg_fused" | "amg" => sweep + 2.0 * bytes.dot,
        "cg_f32" => 0.5 * (sweep + 2.0 * bytes.dot),
        "mixed_cg" => {
            bytes.spmv + 3.0 * bytes.vector + 2.0 * bytes.dot + 0.5 * bytes.precon + bytes.vector
        }
        "chebyshev" | "richardson" => sweep,
        "mixed_chebyshev" => {
            // one block of m fused f32 sweeps + the f64 residual control
            m * 0.5 * fused_step + bytes.spmv + bytes.vector + bytes.dot
        }
        "mixed_richardson" => {
            // Richardson's inner loop is not a fusion target: m plain
            // f32 sweeps + the f64 residual control
            m * 0.5 * sweep + bytes.spmv + bytes.vector + bytes.dot
        }
        "ppcg" => sweep + 2.0 * bytes.dot + m * fused_step,
        "mixed_ppcg" => sweep + 2.0 * bytes.dot + m * 0.5 * fused_step + bytes.vector,
        // unknown methods: price them as a plain preconditioned CG so
        // the tuner still has a finite ordering key
        _ => sweep + 2.0 * bytes.dot,
    }
}

/// Element width in bytes of a named solver's *bulk* sweeps: 4 for the
/// pure-f32 method and the mixed methods (whose traffic is dominated by
/// the f32 inner leg), 8 for everything else. Feed this to
/// [`predict_width`] / [`KernelBytes::for_width`] so reduced-precision
/// candidates are priced at their true 4 B/element instead of the f64 8.
pub fn solver_elem_bytes(solver: &str) -> f64 {
    match solver {
        "cg_f32" => 4.0,
        s if s.starts_with("mixed_") => 4.0,
        _ => 8.0,
    }
}

/// BoomerAMG-realism constants for the baseline replay. Our in-repo
/// baseline is a *geometric* V-cycle whose serial costs undershoot a
/// real algebraic hierarchy; these factors restore the documented
/// characteristics of the era's BoomerAMG (hypre ~2.10) so the Fig. 7
/// replay prices the library the paper actually ran, not our leaner
/// stand-in. Sources: hypre scaling studies and the paper's own §I/§VIII
/// remarks about setup cost and interconnect stress.
pub mod amg_model {
    /// Galerkin operator complexity: coarse operators densify (9-point
    /// and beyond), multiplying per-sweep traffic.
    pub const OPERATOR_COMPLEXITY: f64 = 2.5;
    /// Hybrid Gauss-Seidel smoothing exchanges per sweep (forward +
    /// backward).
    pub const EXCHANGES_PER_SWEEP: f64 = 2.0;
    /// Collective rounds per level during setup (parallel coarsening's
    /// independent-set iterations + interpolation construction).
    pub const SETUP_ROUNDS: f64 = 25.0;
    /// Setup touches each fine cell several times (strength graph,
    /// coarsening, triple-matrix products).
    pub const SETUP_BYTES_PER_CELL: f64 = 2000.0;
}

/// Fan-in contention on a level with fewer cells than the machine has
/// parallel contexts: the level lives on ~`cells` active workers, and
/// traffic from the machine's full width (`nodes × cores_per_node` —
/// hybrid ranks still inject through every core's shared resources)
/// funnels across the boundary of that active subgrid, with
/// ≈ `cells^(2/3)` effective injection ports in our empirical congestion
/// model. Calibrated so the baseline's strong-scaling collapse matches
/// published hypre-era behaviour and the paper's Fig. 7 shape.
fn agglomeration_contention(m: &Machine, nodes: usize, level_cells: f64) -> f64 {
    let width = (nodes * m.cores_per_node.max(1)) as f64;
    if level_cells >= width {
        return 0.0;
    }
    m.net.latency * width / level_cells.powf(2.0 / 3.0)
}

/// Replays an AMG-PCG trace (outer CG on the fine grid + per-level
/// V-cycle work + per-step hierarchy setup), with the
/// [`amg_model`] realism factors applied.
pub fn predict_amg(
    machine: &Machine,
    mg: &MgTrace,
    global: (usize, usize),
    nodes: usize,
    bytes: KernelBytes,
) -> ScalingPoint {
    // outer CG protocol on the fine grid
    let mut point = predict(machine, &mg.outer, global, nodes, bytes);
    let ranks = point.ranks;

    // per-level V-cycle work: each sweep is a stencil-class kernel (at
    // AMG operator complexity) plus halo exchanges at that level's tile
    // size, plus agglomeration contention once the level is smaller than
    // the machine
    for (&level, &sweeps) in &mg.level_sweeps {
        let shape = mg
            .level_shapes
            .get(level as usize)
            .copied()
            .unwrap_or((1, 1));
        let tile = worst_tile(shape, ranks);
        let ws = (tile.0 * tile.1 * machine.resident_fields * 8) as f64;
        let cells = (tile.0 * tile.1) as f64;
        let level_cells = (shape.0 * shape.1) as f64;
        point.compute += sweeps as f64
            * sweep_time(
                machine,
                cells,
                bytes.spmv * amg_model::OPERATOR_COMPLEXITY,
                ws,
            );
        point.halo += sweeps as f64
            * (amg_model::EXCHANGES_PER_SWEEP * halo_time(machine, ranks, tile, 1.0, 1.0, 8.0)
                + agglomeration_contention(machine, nodes, level_cells));
    }

    // coarsest direct solve: gather + solve + broadcast
    let coarse_cells = mg.level_shapes.last().map(|&(a, b)| a * b).unwrap_or(1) as f64;
    let coarse = 2.0 * log2_ceil(ranks) * machine.net.latency
        + coarse_cells * coarse_cells * 2e-9 / 1e9 * 1e9 // ~n² flops at 1 Gflop/s
        + 2.0 * machine.node.host_link_latency;
    point.halo += mg.coarse_solves as f64 * coarse;

    // hierarchy setup each time step: coarsening + Galerkin-class work
    // (BoomerAMG's documented pain point) + per-level collective setup
    let setup_cells_per_rank = mg.setup_cells as f64 / ranks as f64;
    let levels = mg.level_shapes.len() as f64;
    point.setup = setup_cells_per_rank * amg_model::SETUP_BYTES_PER_CELL
        / machine.effective_bandwidth(setup_cells_per_rank * 8.0)
        + levels
            * amg_model::SETUP_ROUNDS
            * (machine.net.tree_hop(ranks) * log2_ceil(ranks) + machine.net.latency)
        + levels * 20.0 * machine.node.sweep_overhead;

    point
}

/// A labelled strong-scaling series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingSeries {
    /// Legend label (e.g. `"PPCG - 16"`).
    pub label: String,
    /// Machine name.
    pub machine: String,
    /// Points by increasing node count.
    pub points: Vec<ScalingPoint>,
}

impl ScalingSeries {
    /// Predicts a full node sweep (powers of two up to
    /// `machine.max_nodes`).
    pub fn sweep(
        label: impl Into<String>,
        machine: &Machine,
        trace: &SolveTrace,
        global: (usize, usize),
        bytes: KernelBytes,
    ) -> Self {
        Self::sweep_width(label, machine, trace, global, bytes, 8.0)
    }

    /// [`ScalingSeries::sweep`] at an explicit element width in bytes
    /// (4.0 for f32/mixed protocols), so half-precision legs replay
    /// with width-correct wire and working-set accounting. Pair
    /// `bytes` with the same width ([`KernelBytes::for_width`]).
    pub fn sweep_width(
        label: impl Into<String>,
        machine: &Machine,
        trace: &SolveTrace,
        global: (usize, usize),
        bytes: KernelBytes,
        elem_bytes: f64,
    ) -> Self {
        let points = node_counts(machine.max_nodes)
            .into_iter()
            .map(|n| predict_width(machine, trace, global, n, bytes, elem_bytes))
            .collect();
        ScalingSeries {
            label: label.into(),
            machine: machine.name.clone(),
            points,
        }
    }

    /// Predicts an AMG sweep.
    pub fn sweep_amg(
        label: impl Into<String>,
        machine: &Machine,
        mg: &MgTrace,
        global: (usize, usize),
        bytes: KernelBytes,
    ) -> Self {
        let points = node_counts(machine.max_nodes)
            .into_iter()
            .map(|n| predict_amg(machine, mg, global, n, bytes))
            .collect();
        ScalingSeries {
            label: label.into(),
            machine: machine.name.clone(),
            points,
        }
    }

    /// Time at a given node count, if that point exists.
    pub fn time_at(&self, nodes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.nodes == nodes)
            .map(|p| p.total())
    }

    /// Node count of the fastest point (the "knee" beyond which adding
    /// nodes hurts).
    pub fn best_nodes(&self) -> usize {
        self.points
            .iter()
            .min_by(|a, b| a.total().partial_cmp(&b.total()).unwrap())
            .map(|p| p.nodes)
            .unwrap_or(1)
    }

    /// Strong-scaling efficiency relative to the first point:
    /// `E(P) = T(P₀)·P₀ / (P·T(P))`.
    pub fn efficiency(&self) -> Vec<(usize, f64)> {
        let Some(first) = self.points.first() else {
            return Vec::new();
        };
        let (t0, p0) = (first.total(), first.nodes as f64);
        self.points
            .iter()
            .map(|p| (p.nodes, t0 * p0 / (p.nodes as f64 * p.total())))
            .collect()
    }
}

/// Power-of-two node counts 1..=max.
pub fn node_counts(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 1;
    while n <= max {
        v.push(n);
        n *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{piz_daint, spruce_hybrid, spruce_mpi, titan};

    /// A synthetic CG-like trace: i iterations, 2 reductions and one
    /// depth-1 exchange each, one fused spmv + 3 vector ops per
    /// iteration.
    fn cg_like(iters: u64) -> SolveTrace {
        let mut t = SolveTrace::new("CG-1");
        t.outer_iterations = iters;
        for _ in 0..iters {
            t.spmv.record(0);
            t.vector_ops.record(0);
            t.vector_ops.record(0);
            t.vector_ops.record(0);
            t.dot_kernels.record(0);
            t.record_halo(1, 1);
            t.record_reduction(1);
            t.record_reduction(1);
        }
        t
    }

    /// A PPCG-like trace: fewer outer iterations, m inner sweeps per
    /// outer with deep exchanges.
    fn ppcg_like(outer: u64, m: u64, depth: usize) -> SolveTrace {
        let mut t = SolveTrace::new(format!("PPCG-{depth}"));
        t.outer_iterations = outer;
        let per_ex = depth as u64;
        for _ in 0..outer {
            t.spmv.record(0);
            t.record_halo(1, 1);
            t.record_reduction(1);
            t.record_reduction(1);
            // inner smoothing with matrix powers
            let mut avail = 0u64;
            for step in 0..m {
                if avail == 0 {
                    t.record_halo(depth, 2);
                    avail = per_ex;
                }
                let e = (avail - 1).min(m - 1 - step) as usize;
                t.spmv.record(e);
                t.vector_ops.record(e);
                t.vector_ops.record(e);
                t.vector_ops.record(e);
                avail = e as u64;
            }
        }
        t
    }

    #[test]
    fn node_count_sweeps() {
        assert_eq!(node_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(node_counts(1), vec![1]);
    }

    #[test]
    fn compute_shrinks_with_nodes_but_latency_grows() {
        let m = titan();
        let t = cg_like(500);
        let p1 = predict(&m, &t, (4000, 4000), 1, KernelBytes::default());
        let p1k = predict(&m, &t, (4000, 4000), 1024, KernelBytes::default());
        assert!(p1k.compute < p1.compute / 100.0);
        assert!(p1k.reduction > p1.reduction);
        assert!(p1.total() > p1k.total(), "1k nodes must beat 1 node");
    }

    #[test]
    fn titan_knee_near_1k_nodes_for_cg() {
        // paper §VI: the 4000^2 problem stops scaling around 1,024 nodes
        let m = titan();
        let t = cg_like(500);
        let series = ScalingSeries::sweep("CG - 1", &m, &t, (4000, 4000), KernelBytes::default());
        let best = series.best_nodes();
        assert!(
            (128..=2048).contains(&best),
            "CG knee expected in the hundreds-to-1k range, got {best}"
        );
    }

    #[test]
    fn ppcg_outscales_cg_at_high_node_counts() {
        let m = titan();
        // comparable total work: 500 CG iterations vs 30 outer x 16 inner
        let cg = cg_like(500);
        let pp = ppcg_like(30, 16, 16);
        let s_cg = ScalingSeries::sweep("CG - 1", &m, &cg, (4000, 4000), KernelBytes::default());
        let s_pp = ScalingSeries::sweep("PPCG - 16", &m, &pp, (4000, 4000), KernelBytes::default());
        let at = 8192;
        assert!(
            s_pp.time_at(at).unwrap() < s_cg.time_at(at).unwrap(),
            "PPCG-16 must win at scale"
        );
        // and its knee must sit at a higher node count
        assert!(s_pp.best_nodes() >= s_cg.best_nodes());
    }

    #[test]
    fn deeper_matrix_powers_scale_better() {
        let m = piz_daint();
        let d1 = ppcg_like(30, 16, 1);
        let d16 = ppcg_like(30, 16, 16);
        let s1 = ScalingSeries::sweep("PPCG - 1", &m, &d1, (4000, 4000), KernelBytes::default());
        let s16 = ScalingSeries::sweep("PPCG - 16", &m, &d16, (4000, 4000), KernelBytes::default());
        assert!(
            s16.time_at(2048).unwrap() < s1.time_at(2048).unwrap(),
            "depth 16 must beat depth 1 at 2,048 nodes"
        );
        // at one node they are nearly identical (same compute, comm free)
        let r = s16.time_at(1).unwrap() / s1.time_at(1).unwrap();
        assert!(r < 1.1, "at one node depths should tie, ratio {r}");
    }

    #[test]
    fn piz_daint_beats_titan_at_2048() {
        // paper §VI: ~47 % faster, attributed to Aries vs Gemini
        let pp = ppcg_like(30, 16, 16);
        let st = ScalingSeries::sweep(
            "PPCG - 16",
            &titan(),
            &pp,
            (4000, 4000),
            KernelBytes::default(),
        );
        let sd = ScalingSeries::sweep(
            "PPCG - 16",
            &piz_daint(),
            &pp,
            (4000, 4000),
            KernelBytes::default(),
        );
        let ratio = st.time_at(2048).unwrap() / sd.time_at(2048).unwrap();
        assert!(
            ratio > 1.2 && ratio < 2.2,
            "Titan/Piz Daint ratio at 2,048 nodes should show the interconnect gap \
             (paper: ~1.47), got {ratio}"
        );
    }

    #[test]
    fn spruce_superlinear_cache_window() {
        let m = spruce_hybrid();
        let t = cg_like(500);
        let s = ScalingSeries::sweep("CG - 1", &m, &t, (4000, 4000), KernelBytes::default());
        let eff = s.efficiency();
        // somewhere in the sweep, efficiency must exceed 1 (tiles start
        // fitting in LLC)
        assert!(
            eff.iter().any(|&(_, e)| e > 1.0),
            "expected a super-linear cache window: {eff:?}"
        );
    }

    #[test]
    fn worst_tile_shrinks() {
        assert_eq!(worst_tile((4000, 4000), 1), (4000, 4000));
        let t4 = worst_tile((4000, 4000), 4);
        assert_eq!(t4, (2000, 2000));
        let t1k = worst_tile((4000, 4000), 1024);
        assert_eq!(t1k, (125, 125));
    }

    /// A synthetic multigrid trace shaped like a measured one.
    fn amg_like(vcycles: u64, fine: usize) -> MgTrace {
        let mut shapes = Vec::new();
        let (mut nx, mut ny) = (fine, fine);
        loop {
            shapes.push((nx, ny));
            if nx * ny <= 64 || nx < 4 {
                break;
            }
            nx = nx.div_ceil(2);
            ny = ny.div_ceil(2);
        }
        let mut outer = SolveTrace::new("BoomerAMG");
        outer.outer_iterations = vcycles;
        for _ in 0..vcycles {
            outer.spmv.record(0);
            outer.record_halo(1, 1);
            outer.record_reduction(1);
            outer.record_reduction(1);
        }
        let mut mg = MgTrace {
            outer,
            level_shapes: shapes.clone(),
            vcycles,
            coarse_solves: vcycles,
            setup_cells: shapes.iter().map(|&(a, b)| (a * b) as u64).sum(),
            ..Default::default()
        };
        for l in 0..shapes.len() {
            mg.level_sweeps.insert(l as u32, 6 * vcycles);
        }
        mg
    }

    #[test]
    fn amg_baseline_wins_small_loses_big() {
        // few V-cycles vs many CG iterations: the baseline must win at
        // one node on work, and lose at scale on its per-level latencies
        let m = spruce_mpi();
        let amg = amg_like(40, 4000);
        let cg = cg_like(8000);
        let s_amg =
            ScalingSeries::sweep_amg("BoomerAMG", &m, &amg, (4000, 4000), KernelBytes::default());
        let s_cg = ScalingSeries::sweep("CG - 1", &m, &cg, (4000, 4000), KernelBytes::default());
        assert!(s_amg.time_at(1).unwrap() < s_cg.time_at(1).unwrap());
        // the baseline's curve must have an interior minimum (rising tail)
        let best = s_amg.best_nodes();
        assert!(best > 1 && best < m.max_nodes, "AMG knee at {best}");
        let t_best = s_amg.time_at(best).unwrap();
        let t_max = s_amg.time_at(m.max_nodes).unwrap();
        assert!(
            t_max > 1.5 * t_best,
            "AMG must collapse beyond its knee: {t_best} -> {t_max}"
        );
    }

    #[test]
    fn agglomeration_contention_grows_with_machine_width() {
        let m = spruce_mpi();
        let coarse = 64.0;
        let c32 = agglomeration_contention(&m, 32, coarse);
        let c512 = agglomeration_contention(&m, 512, coarse);
        assert!(c512 > 10.0 * c32, "contention must grow with nodes");
        // a level larger than the machine is contention-free
        assert_eq!(agglomeration_contention(&m, 32, 1e9), 0.0);
    }

    #[test]
    fn amg_setup_cost_present_and_scale_dependent() {
        let m = spruce_mpi();
        let amg = amg_like(40, 4000);
        let p1 = predict_amg(&m, &amg, (4000, 4000), 1, KernelBytes::default());
        let p512 = predict_amg(&m, &amg, (4000, 4000), 512, KernelBytes::default());
        assert!(p1.setup > 0.0);
        assert!(p512.setup > 0.0);
        // per-rank setup bandwidth work shrinks, collective part grows:
        // at scale the collective term keeps setup from vanishing
        assert!(p512.setup > p1.setup / 512.0 * 4.0);
    }

    #[test]
    fn kernel_bytes_scale_with_element_width() {
        let b64 = KernelBytes::default();
        assert_eq!(b64.spmv, 40.0);
        assert_eq!(b64.vector, 24.0);
        assert_eq!(b64.dot, 16.0);
        assert_eq!(b64.precon, 32.0);
        assert_eq!(b64.fused_update, 24.0);
        // f32 legs move 4 B/element: exactly half of every class
        let b32 = KernelBytes::for_width(4.0);
        assert_eq!(b32.spmv, 20.0);
        assert_eq!(b32.vector, 12.0);
        assert_eq!(b32.dot, 8.0);
        assert_eq!(b32.precon, 16.0);
        assert_eq!(b32.fused_update, 12.0);
        assert_eq!(solver_elem_bytes("cg_f32"), 4.0);
        assert_eq!(solver_elem_bytes("mixed_ppcg"), 4.0);
        assert_eq!(solver_elem_bytes("mixed_chebyshev"), 4.0);
        assert_eq!(solver_elem_bytes("cg"), 8.0);
        assert_eq!(solver_elem_bytes("ppcg"), 8.0);
    }

    #[test]
    fn f32_iteration_priced_at_4_bytes_per_element() {
        let b = KernelBytes::default();
        let cg = predicted_iteration_bytes("cg", 0, &b);
        let cg32 = predicted_iteration_bytes("cg_f32", 0, &b);
        assert!((cg32 - 0.5 * cg).abs() < 1e-12);
        // pricing the same schedule from 4-byte kernel bytes agrees:
        // the f32 discount is exactly the element-width ratio
        let b32 = KernelBytes::for_width(4.0);
        assert!((predicted_iteration_bytes("cg", 0, &b32) - cg32).abs() < 1e-12);
    }

    #[test]
    fn comm_terms_scale_with_element_width() {
        // the old model hardcoded 8-byte wire payloads; f32 legs must
        // now pay half the bandwidth term in halo and reduction time
        let m = titan();
        let t = cg_like(100);
        let p64 = predict_width(&m, &t, (4000, 4000), 64, KernelBytes::for_width(8.0), 8.0);
        let p32 = predict_width(&m, &t, (4000, 4000), 64, KernelBytes::for_width(4.0), 4.0);
        assert!(p32.compute < p64.compute);
        assert!(p32.halo < p64.halo, "f32 halo faces are half the bytes");
        assert!(p32.reduction < p64.reduction);
        // predict() is the f64 shorthand
        let p = predict(&m, &t, (4000, 4000), 64, KernelBytes::default());
        assert_eq!(p.total(), p64.total());
    }

    #[test]
    fn fused_ppcg_inner_sweep_prices_below_unfused() {
        let b = KernelBytes::default();
        let m = 16;
        let sweep = b.spmv + 3.0 * b.vector + b.precon;
        let unfused = sweep + 2.0 * b.dot + m as f64 * sweep;
        let fused = predicted_iteration_bytes("ppcg", m, &b);
        assert!(fused < unfused, "fusion must reduce modelled bytes");
        // each fused inner step saves 6 elements/cell: the skipped `w`
        // store + reload, the separate `sd` reload, and the `tmp`
        // round-trip the fused recurrence elides
        assert!((unfused - fused - m as f64 * 6.0 * 8.0).abs() < 1e-9);
        // the mixed variant keeps the same fused structure at half width
        let mixed = predicted_iteration_bytes("mixed_ppcg", m, &b);
        assert!(mixed < fused);
    }

    #[test]
    fn efficiency_starts_at_one() {
        let m = titan();
        let t = cg_like(100);
        let s = ScalingSeries::sweep("CG - 1", &m, &t, (1000, 1000), KernelBytes::default());
        let eff = s.efficiency();
        assert_eq!(eff[0].0, 1);
        assert!((eff[0].1 - 1.0).abs() < 1e-12);
    }
}
