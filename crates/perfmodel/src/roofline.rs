//! Per-kernel roofline model for the hot 5-point kernels.
//!
//! Where [`crate::scaling`] prices whole solves on modelled machines,
//! this module prices *one kernel sweep* on the machine the benchmark
//! is actually running on: each hot kernel gets a static bytes/cell and
//! flops/cell figure, and a measured runtime plus a measured streaming
//! peak (e.g. from a triad sweep over arrays of the same footprint)
//! turn into an honest percent-of-peak number. All the kernels here are
//! far below the ridge point of any real machine (arithmetic intensity
//! well under 1 flop/byte), so percent of *streaming* peak — not flop
//! peak — is the meaningful efficiency axis, exactly as the paper
//! argues for TeaLeaf's bandwidth-bound sweeps.
//!
//! Element counts match the [`crate::KernelBytes`] conventions: a
//! 5-point-read field costs 2 elements/cell (the centre row streams
//! once; the north/south neighbours hit cache), a read-modify-write
//! costs 2, a plain load or store costs 1.

/// Static traffic and arithmetic model of one hot kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelRoofline {
    /// Kernel name as reported by the `speedup` bench
    /// (`apply`/`residual`/`dot`/`axpy`/`scale_add`/`fused_cheb`).
    pub name: &'static str,
    /// Elements moved per interior cell per sweep (width-agnostic;
    /// multiply by the element width for bytes).
    pub elems_per_cell: f64,
    /// Floating-point operations per interior cell per sweep.
    pub flops_per_cell: f64,
}

impl KernelRoofline {
    /// Bytes moved per cell at the given element width in bytes
    /// (8 for f64, 4 for f32).
    pub fn bytes_per_cell(&self, elem_bytes: f64) -> f64 {
        self.elems_per_cell * elem_bytes
    }

    /// Arithmetic intensity in flops/byte at the given element width.
    pub fn arithmetic_intensity(&self, elem_bytes: f64) -> f64 {
        self.flops_per_cell / self.bytes_per_cell(elem_bytes)
    }

    /// Memory bandwidth this kernel achieved, in bytes/second, given a
    /// measured runtime over `cells` interior cells.
    pub fn achieved_bandwidth(&self, cells: f64, elem_bytes: f64, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        cells * self.bytes_per_cell(elem_bytes) / seconds
    }

    /// Percent of a measured streaming peak (bytes/second) this kernel
    /// achieved: `100 × achieved_bandwidth / streaming_peak`.
    pub fn percent_of_peak(
        &self,
        cells: f64,
        elem_bytes: f64,
        seconds: f64,
        streaming_peak: f64,
    ) -> f64 {
        if streaming_peak <= 0.0 {
            return 0.0;
        }
        100.0 * self.achieved_bandwidth(cells, elem_bytes, seconds) / streaming_peak
    }
}

/// The hot kernels of the solver, with their per-cell element and flop
/// counts.
///
/// * `apply` — 5-point stencil `w = A·p`: p 5-point (2) + Kx + Ky +
///   store w = 5 elems; 5 multiplies + 8 adds = 13 flops.
/// * `residual` — `r = u0 − A·u`: u 5-point (2) + Kx + Ky + u0 +
///   store r = 6 elems; the stencil + 1 subtract = 14 flops.
/// * `dot` — two streamed loads, 1 multiply + 1 add.
/// * `axpy` — `y += α·x`: 2 loads + 1 store, 1 multiply + 1 add.
/// * `scale_add` — `y = α·y + β·x`: 2 loads + 1 store, 2 mul + 1 add.
/// * `fused_cheb` — the fused Chebyshev pass `z += sd; rr −= A·sd`:
///   sd 5-point (2) + Kx + Ky + z rmw (2) + rr rmw (2) = 8 elems;
///   the stencil + 1 add + 1 subtract = 15 flops.
pub const HOT_KERNELS: [KernelRoofline; 6] = [
    KernelRoofline {
        name: "apply",
        elems_per_cell: 5.0,
        flops_per_cell: 13.0,
    },
    KernelRoofline {
        name: "residual",
        elems_per_cell: 6.0,
        flops_per_cell: 14.0,
    },
    KernelRoofline {
        name: "dot",
        elems_per_cell: 2.0,
        flops_per_cell: 2.0,
    },
    KernelRoofline {
        name: "axpy",
        elems_per_cell: 3.0,
        flops_per_cell: 2.0,
    },
    KernelRoofline {
        name: "scale_add",
        elems_per_cell: 3.0,
        flops_per_cell: 3.0,
    },
    KernelRoofline {
        name: "fused_cheb",
        elems_per_cell: 8.0,
        flops_per_cell: 15.0,
    },
];

/// Looks up a hot-kernel model by name.
pub fn kernel_roofline(name: &str) -> Option<KernelRoofline> {
    HOT_KERNELS.iter().copied().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_bytes() {
        let apply = kernel_roofline("apply").unwrap();
        assert_eq!(apply.bytes_per_cell(8.0), 40.0);
        assert_eq!(apply.bytes_per_cell(4.0), 20.0);
        assert!(kernel_roofline("nope").is_none());
        // fused pass moves fewer elements than apply + two axpys
        let fused = kernel_roofline("fused_cheb").unwrap();
        let axpy = kernel_roofline("axpy").unwrap();
        assert!(fused.elems_per_cell < apply.elems_per_cell + 2.0 * axpy.elems_per_cell);
    }

    #[test]
    fn all_kernels_are_bandwidth_bound() {
        // arithmetic intensity far below any real ridge point
        // (~5-10 flops/byte on the paper's machines)
        for k in HOT_KERNELS {
            assert!(
                k.arithmetic_intensity(8.0) < 1.0,
                "{} unexpectedly compute-bound",
                k.name
            );
        }
    }

    #[test]
    fn percent_of_peak_arithmetic() {
        let dot = kernel_roofline("dot").unwrap();
        // 1e6 cells × 16 B in 1 ms = 16 GB/s; 50% of a 32 GB/s peak
        let pct = dot.percent_of_peak(1e6, 8.0, 1e-3, 32e9);
        assert!((pct - 50.0).abs() < 1e-9);
        assert_eq!(dot.percent_of_peak(1e6, 8.0, 1e-3, 0.0), 0.0);
        assert_eq!(dot.achieved_bandwidth(1e6, 8.0, 0.0), 0.0);
    }
}
