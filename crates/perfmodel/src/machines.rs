//! Machine models for the paper's three test systems (Table I).
//!
//! | System    | Compute device | Interconnect    |
//! |-----------|----------------|-----------------|
//! | Spruce    | E5-2680v2      | SGI Altix ICE-X |
//! | Piz Daint | NVIDIA K20x    | Cray Aries      |
//! | Titan     | NVIDIA K20x    | Cray Gemini     |
//!
//! The constants below are calibrated from public hardware data sheets
//! and micro-benchmark literature of the era (documented per field).
//! Absolute times are estimates; the *ratios* that drive the paper's
//! observations are what the model is built to honour: Aries beats
//! Gemini on latency and bandwidth (Piz Daint ≈ 47 % faster at 2,048
//! nodes, §VI), GPU kernels pay a launch overhead that floors
//! strong-scaling at ~1k nodes for a 4000² mesh, and Spruce's LLC grants
//! super-linear speedups once tiles fit in cache.

use serde::{Deserialize, Serialize};

/// Per-node (or per-device) compute model. Kernels are modelled as
/// memory-bandwidth-bound streams with a fixed per-sweep overhead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeModel {
    /// Device name for Table I.
    pub device: String,
    /// Effective main-memory bandwidth per node, bytes/s.
    pub mem_bandwidth: f64,
    /// Per-kernel-sweep fixed overhead, seconds (GPU launch latency /
    /// OpenMP region fork-join).
    pub sweep_overhead: f64,
    /// Last-level cache per node, bytes (0 disables the cache model).
    pub cache_bytes: f64,
    /// Effective bandwidth when the working set fits in cache, bytes/s.
    pub cache_bandwidth: f64,
    /// Extra link between device memory and the NIC (PCIe for GPU
    /// machines): latency in seconds, 0 for CPUs.
    pub host_link_latency: f64,
    /// PCIe-class bandwidth in bytes/s (`f64::INFINITY` for CPUs).
    pub host_link_bandwidth: f64,
}

/// Physical topology of the interconnect; determines how message latency
/// grows with machine size (the mechanism behind Titan-vs-Piz-Daint,
/// paper §VI).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Topology {
    /// 3D torus (Gemini): average route length grows as `P^(1/3)`.
    Torus3D {
        /// Per-router hop latency, seconds.
        hop: f64,
    },
    /// Dragonfly (Aries): bounded route length regardless of size.
    Dragonfly {
        /// Per-hop latency, seconds (≤ 3 hops on any route).
        hop: f64,
    },
    /// Hypercube (ICE-X): route length grows as `log2(P)`.
    Hypercube {
        /// Per-dimension hop latency, seconds.
        hop: f64,
    },
}

impl Topology {
    /// Extra per-message latency from routing across `ranks` endpoints.
    pub fn route_extra(&self, ranks: usize) -> f64 {
        let p = ranks.max(1) as f64;
        match *self {
            // 0.75 * P^(1/3) is the mean Manhattan distance on a cubic torus
            Topology::Torus3D { hop } => hop * 0.75 * p.cbrt(),
            Topology::Dragonfly { hop } => hop * 3.0,
            Topology::Hypercube { hop } => hop * p.log2().max(0.0),
        }
    }
}

/// α-β interconnect model with a log-tree reduction term and a
/// topology-dependent routing term.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Interconnect name for Table I.
    pub interconnect: String,
    /// Point-to-point injection latency α, seconds.
    pub latency: f64,
    /// Per-link bandwidth β, bytes/s.
    pub bandwidth: f64,
    /// Per-hop software latency of the allreduce tree, seconds.
    pub reduction_hop: f64,
    /// Physical topology.
    pub topology: Topology,
}

impl NetworkModel {
    /// Effective one-message latency on a machine of `ranks` endpoints.
    pub fn message_latency(&self, ranks: usize) -> f64 {
        self.latency + self.topology.route_extra(ranks)
    }

    /// Cost of one allreduce tree hop: software overhead plus half the
    /// machine's average route (tree hops span growing distances).
    pub fn tree_hop(&self, ranks: usize) -> f64 {
        self.reduction_hop + 0.5 * self.topology.route_extra(ranks)
    }
}

/// A complete machine: node + network + run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// Human-readable system name.
    pub name: String,
    /// Compute model.
    pub node: NodeModel,
    /// Interconnect model.
    pub net: NetworkModel,
    /// MPI ranks per node (1 for GPU systems, >1 for flat MPI on CPUs).
    pub ranks_per_node: usize,
    /// Cores (parallel contexts) per node — 20 for Spruce's dual
    /// E5-2680v2, 1 for the GPU systems (the device is one injector).
    pub cores_per_node: usize,
    /// Total cores (Table I column).
    pub total_cores: usize,
    /// Largest node count the paper scales to on this system.
    pub max_nodes: usize,
    /// Approximate resident fields per cell for the cache-working-set
    /// estimate (u, u0, p, r, w, z, sd, Kx, Ky, density, energy, …).
    pub resident_fields: usize,
}

impl Machine {
    /// Effective per-rank memory bandwidth (node bandwidth shared by the
    /// ranks on it).
    pub fn rank_bandwidth(&self) -> f64 {
        self.node.mem_bandwidth / self.ranks_per_node as f64
    }

    /// Effective per-rank cache capacity.
    pub fn rank_cache(&self) -> f64 {
        self.node.cache_bytes / self.ranks_per_node as f64
    }

    /// Effective bandwidth for a per-rank working set of `bytes`:
    /// harmonic blend of cache and memory bandwidth by the cached
    /// fraction.
    pub fn effective_bandwidth(&self, working_set: f64) -> f64 {
        let cache = self.rank_cache();
        if cache <= 0.0 || working_set <= 0.0 {
            return self.rank_bandwidth();
        }
        let cached_fraction = (cache / working_set).min(1.0);
        let mem = self.rank_bandwidth();
        let fast = self.node.cache_bandwidth / self.ranks_per_node as f64;
        1.0 / ((1.0 - cached_fraction) / mem + cached_fraction / fast)
    }
}

/// NVIDIA K20x: 250 GB/s peak GDDR5, ~70 % achievable in stencil codes;
/// per-sweep cost ≈ 3 µs (CUDA launch ≈ 5–7 µs, partly amortised by the
/// reference's kernel fusion); data stays resident so only halos cross
/// PCIe 2.0 (~6 GB/s, ~10 µs per transfer including stream sync).
fn k20x() -> NodeModel {
    NodeModel {
        device: "NVIDIA K20x".into(),
        mem_bandwidth: 175e9,
        sweep_overhead: 3.0e-6,
        cache_bytes: 0.0,
        cache_bandwidth: 0.0,
        host_link_latency: 10.0e-6,
        host_link_bandwidth: 6e9,
    }
}

/// Dual-socket E5-2680v2 node: 2×10 cores, ~85 GB/s STREAM, 2×25 MB LLC
/// (~300 GB/s aggregate when resident).
fn e5_2680v2() -> NodeModel {
    NodeModel {
        device: "E5-2680v2".into(),
        mem_bandwidth: 85e9,
        sweep_overhead: 0.0, // set per run mode below
        cache_bytes: 50e6,
        cache_bandwidth: 320e9,
        host_link_latency: 0.0,
        host_link_bandwidth: f64::INFINITY,
    }
}

/// Cray Gemini (Titan): ~1.5–2.5 µs MPI latency, ~4 GB/s effective
/// per-direction links, software collectives, and — decisively — a 3D
/// torus whose routes lengthen as the job grows.
fn gemini() -> NetworkModel {
    NetworkModel {
        interconnect: "Cray Gemini".into(),
        latency: 1.8e-6,
        bandwidth: 4.0e9,
        reduction_hop: 2.4e-6,
        topology: Topology::Torus3D { hop: 0.3e-6 },
    }
}

/// Cray Aries (Piz Daint): dragonfly (≤ 3 hops at any scale), ~1.2 µs
/// latency, ~10 GB/s links, hardware collective support.
fn aries() -> NetworkModel {
    NetworkModel {
        interconnect: "Cray Aries".into(),
        latency: 1.2e-6,
        bandwidth: 10.0e9,
        reduction_hop: 1.0e-6,
        topology: Topology::Dragonfly { hop: 0.1e-6 },
    }
}

/// SGI Altix ICE-X (Spruce): FDR InfiniBand hypercube, ~1.1 µs latency,
/// ~6 GB/s.
fn ice_x() -> NetworkModel {
    NetworkModel {
        interconnect: "SGI Altix ICE-X".into(),
        latency: 1.1e-6,
        bandwidth: 6.0e9,
        reduction_hop: 1.2e-6,
        topology: Topology::Hypercube { hop: 0.05e-6 },
    }
}

/// Titan (OLCF): 18,688 K20x nodes on Gemini; the paper scales to 8,192.
pub fn titan() -> Machine {
    Machine {
        name: "Titan".into(),
        node: k20x(),
        net: gemini(),
        ranks_per_node: 1,
        cores_per_node: 1,
        total_cores: 560_640,
        max_nodes: 8192,
        resident_fields: 15,
    }
}

/// Piz Daint (CSCS, pre-P100 upgrade): K20x on Aries; paper scales to
/// 2,048.
pub fn piz_daint() -> Machine {
    Machine {
        name: "Piz Daint".into(),
        node: k20x(),
        net: aries(),
        ranks_per_node: 1,
        cores_per_node: 1,
        total_cores: 115_984,
        max_nodes: 2048,
        resident_fields: 15,
    }
}

/// Spruce (AWE) in flat-MPI mode: one rank per core (20/node); tiny
/// per-sweep overhead but 20-way shared bandwidth and deeper reduction
/// trees.
pub fn spruce_mpi() -> Machine {
    let mut node = e5_2680v2();
    node.sweep_overhead = 0.3e-6;
    Machine {
        name: "Spruce (MPI)".into(),
        node,
        net: ice_x(),
        ranks_per_node: 20,
        cores_per_node: 20,
        total_cores: 40_080,
        max_nodes: 1024,
        resident_fields: 15,
    }
}

/// Spruce in hybrid MPI+OpenMP mode: one rank per NUMA domain (2/node);
/// OpenMP fork-join overhead per sweep, shallower reduction tree.
pub fn spruce_hybrid() -> Machine {
    let mut node = e5_2680v2();
    node.sweep_overhead = 2.5e-6;
    Machine {
        name: "Spruce (Hybrid)".into(),
        node,
        net: ice_x(),
        ranks_per_node: 2,
        cores_per_node: 20,
        total_cores: 40_080,
        max_nodes: 1024,
        resident_fields: 15,
    }
}

/// All four modelled configurations (Table I rows; Spruce appears in
/// both run modes).
pub fn all_machines() -> Vec<Machine> {
    vec![spruce_mpi(), spruce_hybrid(), piz_daint(), titan()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let t = titan();
        assert_eq!(t.node.device, "NVIDIA K20x");
        assert_eq!(t.net.interconnect, "Cray Gemini");
        assert_eq!(t.total_cores, 560_640);
        let d = piz_daint();
        assert_eq!(d.node.device, "NVIDIA K20x");
        assert_eq!(d.net.interconnect, "Cray Aries");
        let s = spruce_mpi();
        assert_eq!(s.node.device, "E5-2680v2");
        assert_eq!(s.net.interconnect, "SGI Altix ICE-X");
        assert_eq!(s.total_cores, 40_080);
    }

    #[test]
    fn aries_beats_gemini() {
        assert!(piz_daint().net.latency < titan().net.latency);
        assert!(piz_daint().net.bandwidth > titan().net.bandwidth);
        assert!(piz_daint().net.reduction_hop < titan().net.reduction_hop);
    }

    #[test]
    fn rank_sharing() {
        let s = spruce_mpi();
        assert!((s.rank_bandwidth() - 85e9 / 20.0).abs() < 1.0);
        assert!((s.rank_cache() - 50e6 / 20.0).abs() < 1.0);
        let h = spruce_hybrid();
        assert!(h.rank_bandwidth() > s.rank_bandwidth());
    }

    #[test]
    fn cache_model_blends() {
        let s = spruce_hybrid();
        // huge working set -> memory bandwidth
        let slow = s.effective_bandwidth(10e9);
        assert!((slow - s.rank_bandwidth()).abs() / s.rank_bandwidth() < 0.02);
        // tiny working set -> cache bandwidth
        let fast = s.effective_bandwidth(1e6);
        assert!(
            fast > 3.0 * slow,
            "cache must speed things up: {fast} vs {slow}"
        );
        // GPU has no cache model
        let t = titan();
        assert_eq!(t.effective_bandwidth(1e6), t.rank_bandwidth());
    }

    #[test]
    fn monotone_bandwidth_in_working_set() {
        let s = spruce_hybrid();
        let mut prev = f64::INFINITY;
        for ws in [1e6, 5e6, 25e6, 100e6, 1e9] {
            let bw = s.effective_bandwidth(ws);
            assert!(bw <= prev + 1.0, "bandwidth must not rise with working set");
            prev = bw;
        }
    }
}
