//! The geometric multigrid hierarchy.
//!
//! On TeaLeaf's uniform grids, BoomerAMG's algebraic coarsening reduces
//! to (essentially) geometric 2×2 cell aggregation, so the baseline is
//! built geometrically: each coarser level halves both axes (ragged last
//! blocks absorb odd remainders), re-discretising the diffusion operator
//! from block-averaged densities with the spacing-rescaled `rx/4`,
//! `ry/4`. The coarsest level (≤ `COARSEST_CELLS` unknowns) is factorised
//! densely once at setup ([`crate::chol::Cholesky`]).
//!
//! Smoother: weighted point-Jacobi (`ω = 0.8`), the classic choice for
//! cell-centred diffusion multigrid and TeaLeaf-compatible (no data
//! dependencies inside a sweep).

use crate::chol::Cholesky;
use crate::trace::MgTrace;
use tea_core::{SolveTrace, TileBounds, TileOperator};
use tea_mesh::{Coefficient, Coefficients, Extent2D, Field2D, Mesh2D};

/// Stop coarsening once a level has at most this many cells.
pub const COARSEST_CELLS: usize = 64;

/// Jacobi smoothing weight.
pub const JACOBI_WEIGHT: f64 = 0.8;

/// One grid level.
#[derive(Debug)]
pub struct Level {
    /// The level's operator (level 0 = finest).
    pub op: TileOperator,
    /// Reciprocal diagonal for the smoother.
    pub inv_diag: Field2D,
    /// Cells in x.
    pub nx: usize,
    /// Cells in y.
    pub ny: usize,
    // V-cycle scratch, owned per level so cycles allocate nothing.
    pub(crate) x: Field2D,
    pub(crate) b: Field2D,
    pub(crate) r: Field2D,
}

/// V-cycle smoothing configuration.
#[derive(Debug, Clone, Copy)]
pub struct MgOpts {
    /// Pre-smoothing sweeps.
    pub nu_pre: usize,
    /// Post-smoothing sweeps.
    pub nu_post: usize,
}

impl Default for MgOpts {
    fn default() -> Self {
        MgOpts {
            nu_pre: 2,
            nu_post: 2,
        }
    }
}

/// A built multigrid hierarchy with a dense coarse factorisation.
#[derive(Debug)]
pub struct MgHierarchy {
    /// Levels, finest first.
    pub levels: Vec<Level>,
    coarse: Cholesky,
    opts: MgOpts,
    /// Total cells touched during setup (for the performance model's
    /// setup-cost term).
    pub setup_cells: u64,
}

fn make_level(
    density: &Field2D,
    nx: usize,
    ny: usize,
    kind: Coefficient,
    rx: f64,
    ry: f64,
) -> Level {
    let mesh = Mesh2D::serial(nx, ny, Extent2D::unit());
    let coeffs = Coefficients::assemble(&mesh, density, kind, rx, ry, 1);
    let op = TileOperator::new(coeffs, TileBounds::serial(nx, ny));
    let mut inv_diag = Field2D::new(nx, ny, 1);
    op.diagonal_into(&mut inv_diag, 0);
    for k in 0..ny as isize {
        for v in inv_diag.row_mut(k, 0, nx as isize) {
            *v = 1.0 / *v;
        }
    }
    Level {
        op,
        inv_diag,
        nx,
        ny,
        x: Field2D::new(nx, ny, 1),
        b: Field2D::new(nx, ny, 1),
        r: Field2D::new(nx, ny, 1),
    }
}

/// Block-averages a density field onto the coarser grid (ragged blocks
/// absorb odd remainders).
fn coarsen_density(fine: &Field2D, cnx: usize, cny: usize) -> Field2D {
    let (fnx, fny) = (fine.nx(), fine.ny());
    let mut coarse = Field2D::new(cnx, cny, 1);
    for ck in 0..cny {
        let k0 = ck * 2;
        let k1 = if ck + 1 == cny {
            fny
        } else {
            (k0 + 2).min(fny)
        };
        for cj in 0..cnx {
            let j0 = cj * 2;
            let j1 = if cj + 1 == cnx {
                fnx
            } else {
                (j0 + 2).min(fnx)
            };
            let mut acc = 0.0;
            for k in k0..k1 {
                for j in j0..j1 {
                    acc += fine.at(j as isize, k as isize);
                }
            }
            coarse.set(
                cj as isize,
                ck as isize,
                acc / ((j1 - j0) * (k1 - k0)) as f64,
            );
        }
    }
    coarse
}

impl MgHierarchy {
    /// Builds the hierarchy from the finest-level density and operator
    /// scalings. `density` must carry at least one ghost layer.
    pub fn build(density: &Field2D, kind: Coefficient, rx: f64, ry: f64, opts: MgOpts) -> Self {
        let (mut nx, mut ny) = (density.nx(), density.ny());
        assert!(nx >= 2 && ny >= 2, "grid too small for multigrid");
        let mut levels = Vec::new();
        let mut setup_cells = 0u64;
        let mut d = {
            // reflect so ghost densities exist on every level
            let mut d0 = density.clone();
            d0.reflect_boundaries(1);
            d0
        };
        let (mut rx_l, mut ry_l) = (rx, ry);
        loop {
            setup_cells += (nx * ny) as u64;
            levels.push(make_level(&d, nx, ny, kind, rx_l, ry_l));
            if nx * ny <= COARSEST_CELLS || nx < 4 || ny < 4 {
                break;
            }
            let (cnx, cny) = (nx.div_ceil(2), ny.div_ceil(2));
            let mut cd = coarsen_density(&d, cnx, cny);
            cd.reflect_boundaries(1);
            d = cd;
            nx = cnx;
            ny = cny;
            rx_l *= 0.25;
            ry_l *= 0.25;
        }
        // dense coarsest operator
        let last = levels.last().unwrap();
        let (cn, cnx) = (last.nx * last.ny, last.nx);
        let mut dense = vec![0.0; cn * cn];
        {
            let kx = &last.op.coeffs.kx;
            let ky = &last.op.coeffs.ky;
            let idx = |j: usize, k: usize| k * cnx + j;
            for k in 0..last.ny {
                for j in 0..last.nx {
                    let (js, ks) = (j as isize, k as isize);
                    let row = idx(j, k);
                    let diag = 1.0
                        + (ky.at(js, ks + 1) + ky.at(js, ks))
                        + (kx.at(js + 1, ks) + kx.at(js, ks));
                    dense[row * cn + row] = diag;
                    if j > 0 {
                        dense[row * cn + idx(j - 1, k)] = -kx.at(js, ks);
                    }
                    if j + 1 < last.nx {
                        dense[row * cn + idx(j + 1, k)] = -kx.at(js + 1, ks);
                    }
                    if k > 0 {
                        dense[row * cn + idx(j, k - 1)] = -ky.at(js, ks);
                    }
                    if k + 1 < last.ny {
                        dense[row * cn + idx(j, k + 1)] = -ky.at(js, ks + 1);
                    }
                }
            }
        }
        let coarse = Cholesky::factor(&dense, cn);
        MgHierarchy {
            levels,
            coarse,
            opts,
            setup_cells,
        }
    }

    /// Number of levels (≥ 1).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Per-level `(nx, ny)` shapes, finest first.
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        self.levels.iter().map(|l| (l.nx, l.ny)).collect()
    }

    /// Applies one V-cycle to approximately solve `A z = r` on the finest
    /// level, writing into `z` (overwritten, i.e. zero initial guess).
    pub fn vcycle(&mut self, r: &Field2D, z: &mut Field2D, trace: &mut MgTrace) {
        trace.vcycles += 1;
        // load the finest rhs
        self.levels[0].b.copy_interior_from(r);
        self.descend(0, trace);
        z.copy_interior_from(&self.levels[0].x);
    }

    fn descend(&mut self, l: usize, trace: &mut MgTrace) {
        let nlev = self.levels.len();
        let mut scratch = SolveTrace::new("mg");
        if l + 1 == nlev {
            // coarsest: dense direct solve
            let lev = &mut self.levels[l];
            let mut rhs: Vec<f64> = Vec::with_capacity(lev.nx * lev.ny);
            for k in 0..lev.ny as isize {
                rhs.extend_from_slice(lev.b.row(k, 0, lev.nx as isize));
            }
            self.coarse.solve_in_place(&mut rhs);
            for k in 0..lev.ny {
                lev.x
                    .row_mut(k as isize, 0, lev.nx as isize)
                    .copy_from_slice(&rhs[k * lev.nx..(k + 1) * lev.nx]);
            }
            trace.coarse_solves += 1;
            return;
        }

        // pre-smooth from zero
        {
            let lev = &mut self.levels[l];
            lev.x.fill(0.0);
            for _ in 0..self.opts.nu_pre {
                smooth(lev, &mut scratch);
                trace.record_level_sweep(l);
            }
            // residual r = b - A x
            lev.op.residual(&lev.x, &lev.b, &mut lev.r, 0, &mut scratch);
            trace.record_level_sweep(l);
        }

        // restrict to the coarser rhs
        {
            let (fine, coarse) = split_two(&mut self.levels, l);
            restrict(&fine.r, &mut coarse.b);
            trace.record_level_sweep(l + 1);
        }

        self.descend(l + 1, trace);

        // prolongate and correct, then post-smooth
        {
            let (fine, coarse) = split_two(&mut self.levels, l);
            prolongate_add(&coarse.x, &mut fine.x);
            trace.record_level_sweep(l);
        }
        {
            let lev = &mut self.levels[l];
            for _ in 0..self.opts.nu_post {
                smooth(lev, &mut scratch);
                trace.record_level_sweep(l);
            }
        }
    }
}

/// Borrow levels `l` and `l+1` simultaneously.
fn split_two(levels: &mut [Level], l: usize) -> (&mut Level, &mut Level) {
    let (a, b) = levels.split_at_mut(l + 1);
    (&mut a[l], &mut b[0])
}

/// One weighted-Jacobi sweep `x += ω D⁻¹ (b - A x)` on a level.
fn smooth(lev: &mut Level, scratch: &mut SolveTrace) {
    lev.op.residual(&lev.x, &lev.b, &mut lev.r, 0, scratch);
    for k in 0..lev.ny as isize {
        let nx = lev.nx as isize;
        let rr = lev.r.row(k, 0, nx);
        let dd = lev.inv_diag.row(k, 0, nx);
        let xr = lev.x.row_mut(k, 0, nx);
        for i in 0..xr.len() {
            xr[i] += JACOBI_WEIGHT * dd[i] * rr[i];
        }
    }
}

/// Full-weighting (block-average) restriction of `fine` into `coarse`.
fn restrict(fine: &Field2D, coarse: &mut Field2D) {
    let (fnx, fny) = (fine.nx(), fine.ny());
    let (cnx, cny) = (coarse.nx(), coarse.ny());
    for ck in 0..cny {
        let k0 = ck * 2;
        let k1 = if ck + 1 == cny {
            fny
        } else {
            (k0 + 2).min(fny)
        };
        for cj in 0..cnx {
            let j0 = cj * 2;
            let j1 = if cj + 1 == cnx {
                fnx
            } else {
                (j0 + 2).min(fnx)
            };
            let mut acc = 0.0;
            for k in k0..k1 {
                for j in j0..j1 {
                    acc += fine.at(j as isize, k as isize);
                }
            }
            coarse.set(
                cj as isize,
                ck as isize,
                acc / ((j1 - j0) * (k1 - k0)) as f64,
            );
        }
    }
}

/// Piecewise-constant prolongation: adds each coarse value to all fine
/// cells of its block.
fn prolongate_add(coarse: &Field2D, fine: &mut Field2D) {
    let (fnx, fny) = (fine.nx(), fine.ny());
    let (cnx, cny) = (coarse.nx(), coarse.ny());
    for k in 0..fny {
        let ck = (k / 2).min(cny - 1);
        for j in 0..fnx {
            let cj = (j / 2).min(cnx - 1);
            let v = coarse.at(cj as isize, ck as isize);
            *fine.at_mut(j as isize, k as isize) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_mesh::{crooked_pipe, timestep_scalings};

    fn pipe_density(n: usize) -> (Field2D, f64, f64, Coefficient) {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, 1);
        let mut energy = Field2D::new(n, n, 1);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        (density, rx, ry, p.coefficient)
    }

    #[test]
    fn hierarchy_halves_each_level() {
        let (d, rx, ry, kind) = pipe_density(64);
        let h = MgHierarchy::build(&d, kind, rx, ry, MgOpts::default());
        let shapes = h.shapes();
        assert_eq!(shapes[0], (64, 64));
        assert_eq!(shapes[1], (32, 32));
        let (cnx, cny) = *shapes.last().unwrap();
        assert!(cnx * cny <= COARSEST_CELLS);
        assert!(h.depth() >= 3);
        assert!(h.setup_cells >= (64 * 64) as u64);
    }

    #[test]
    fn odd_sizes_coarsen_with_ragged_blocks() {
        let (d, rx, ry, kind) = pipe_density(33);
        let h = MgHierarchy::build(&d, kind, rx, ry, MgOpts::default());
        let shapes = h.shapes();
        assert_eq!(shapes[0], (33, 33));
        assert_eq!(shapes[1], (17, 17));
        assert_eq!(shapes[2], (9, 9));
    }

    #[test]
    fn restriction_preserves_constants_and_prolongation_injects() {
        let mut fine = Field2D::new(8, 8, 1);
        fine.fill_interior(3.0);
        let mut coarse = Field2D::new(4, 4, 1);
        restrict(&fine, &mut coarse);
        for k in 0..4isize {
            for j in 0..4isize {
                assert_eq!(coarse.at(j, k), 3.0);
            }
        }
        let mut fine2 = Field2D::new(8, 8, 1);
        prolongate_add(&coarse, &mut fine2);
        for k in 0..8isize {
            for j in 0..8isize {
                assert_eq!(fine2.at(j, k), 3.0);
            }
        }
    }

    #[test]
    fn vcycle_contracts_the_residual() {
        let (d, rx, ry, kind) = pipe_density(32);
        let mut h = MgHierarchy::build(&d, kind, rx, ry, MgOpts::default());
        // manufactured problem: random-ish rhs
        let mut b = Field2D::new(32, 32, 1);
        for k in 0..32isize {
            for j in 0..32isize {
                b.set(j, k, ((j * 13 + k * 7) % 9) as f64 - 4.0);
            }
        }
        let mut x = Field2D::new(32, 32, 1);
        let mut z = Field2D::new(32, 32, 1);
        let mut r = Field2D::new(32, 32, 1);
        let mut scratch = SolveTrace::new("t");
        let mut trace = MgTrace::default();

        let op = &h.levels[0].op.clone();
        op.residual(&x, &b, &mut r, 0, &mut scratch);
        let mut prev = r.interior_norm();
        let r0 = prev;
        for _ in 0..6 {
            // x += V(r)
            h.vcycle(&r, &mut z, &mut trace);
            for k in 0..32isize {
                for j in 0..32isize {
                    let v = x.at(j, k) + z.at(j, k);
                    x.set(j, k, v);
                }
            }
            op.residual(&x, &b, &mut r, 0, &mut scratch);
            let now = r.interior_norm();
            assert!(now < prev, "V-cycle must contract: {now} vs {prev}");
            prev = now;
        }
        assert!(
            prev < 0.05 * r0,
            "six V-cycles must reduce the residual well: {prev} vs {r0}"
        );
        assert_eq!(trace.vcycles, 6);
        assert_eq!(trace.coarse_solves, 6);
        assert!(trace.level_sweeps.len() >= 2);
    }

    #[test]
    fn coarse_direct_solve_is_exact_on_single_level() {
        // a grid at/below COARSEST_CELLS yields a 1-level hierarchy whose
        // V-cycle is the dense direct solve
        let (d, rx, ry, kind) = pipe_density(8);
        let mut h = MgHierarchy::build(&d, kind, rx, ry, MgOpts::default());
        assert_eq!(h.depth(), 1);
        let mut b = Field2D::new(8, 8, 1);
        for k in 0..8isize {
            for j in 0..8isize {
                b.set(j, k, (j - k) as f64);
            }
        }
        let mut z = Field2D::new(8, 8, 1);
        let mut trace = MgTrace::default();
        h.vcycle(&b, &mut z, &mut trace);
        let mut r = Field2D::new(8, 8, 1);
        let mut scratch = SolveTrace::new("t");
        h.levels[0].op.residual(&z, &b, &mut r, 0, &mut scratch);
        assert!(r.interior_max_abs() < 1e-10, "direct solve must be exact");
    }
}
