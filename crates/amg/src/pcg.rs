//! CG preconditioned by one multigrid V-cycle per iteration — the
//! stand-in for the paper's "PETSc CG + Hypre BoomerAMG" baseline.
//!
//! The defining behaviours this reproduces (paper §VI):
//! near-mesh-independent iteration counts (fastest time-to-solution at
//! low node counts) bought with per-iteration work on *every* level —
//! including coarse grids whose per-rank share at scale is a handful of
//! cells, which is why the baseline's strong scaling collapses first.

use crate::hierarchy::{MgHierarchy, MgOpts};
use crate::trace::MgTrace;
use tea_comms::Communicator;
use tea_core::{
    vector, IterativeSolver, SolveContext, SolveOpts, SolveResult, SolveTrace, SolverMeta,
    SolverParams, SolverRegistry, Tile, Workspace,
};
use tea_mesh::{Coefficient, Field2D};

/// Registry metadata for the AMG baseline.
pub const AMG_META: SolverMeta = SolverMeta {
    name: "amg",
    aliases: &["boomeramg", "amg_pcg"],
    summary: "multigrid V-cycle preconditioned CG (the BoomerAMG-class baseline)",
    preconditioned: false,
    needs_eigen_estimate: false,
    deep_halo: false,
    serial_only: true,
    precision: tea_core::Precision::F64,
    tunable: false,
};

/// Registers the AMG baseline into `registry` under `"amg"` (aliases
/// `"boomeramg"`, `"amg_pcg"`). The application layer calls this on top
/// of [`SolverRegistry::builtin`]; custom registries can too.
pub fn register(registry: &mut SolverRegistry) {
    registry.register(AMG_META, |p| Box::new(AmgPcg::from_params(p)));
}

/// A [`SolverRegistry`] with all tea-core builtins plus the AMG
/// baseline — the full solver design space of this reproduction.
pub fn full_registry() -> SolverRegistry {
    let mut reg = SolverRegistry::builtin();
    register(&mut reg);
    reg
}

/// V-cycle-preconditioned CG as an [`IterativeSolver`].
///
/// Rebuilds the multigrid hierarchy from the [`tea_core::Assembly`]
/// carried by the [`SolveContext`] on every solve (the baseline's heavy
/// setup is part of the protocol being reproduced), and accumulates the
/// per-level V-cycle trace across solves; drivers recover it via the
/// [`IterativeSolver::take_diagnostics`] hook (payload [`MgTrace`]) or
/// directly through [`AmgPcg::take_mg_trace`].
///
/// # Panics
/// `solve` panics if the context carries no assembly info or if the
/// communicator spans more than one rank (the baseline is serial; its
/// distributed behaviour enters through trace replay).
#[derive(Debug, Default)]
pub struct AmgPcg {
    amg: AmgPcgOpts,
    opts: SolveOpts,
    mg_trace: Option<MgTrace>,
}

impl AmgPcg {
    /// An AMG-PCG solver with V-cycle configuration `amg`.
    pub fn new(amg: AmgPcgOpts) -> Self {
        AmgPcg {
            amg,
            opts: SolveOpts::default(),
            mg_trace: None,
        }
    }

    /// Registry factory (the V-cycle shape is fixed by [`MgOpts`]
    /// defaults; generic [`SolverParams`] carry nothing it consumes).
    pub fn from_params(_params: &SolverParams) -> Self {
        AmgPcg::new(AmgPcgOpts::default())
    }

    /// Takes the multigrid trace accumulated over all solves since the
    /// last call (`None` if no solve ran).
    pub fn take_mg_trace(&mut self) -> Option<MgTrace> {
        self.mg_trace.take()
    }
}

impl IterativeSolver for AmgPcg {
    fn name(&self) -> &'static str {
        "amg"
    }

    fn label(&self) -> String {
        "BoomerAMG".into()
    }

    fn prepare(&mut self, _ctx: &SolveContext<'_>, opts: &SolveOpts) {
        // the hierarchy is rebuilt per solve from the assembly info (the
        // reference baseline re-runs setup every step); only the options
        // are latched here
        self.opts = *opts;
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        let asm = ctx.assembly.expect(
            "the AMG baseline rebuilds its hierarchy from the density field: \
             construct the SolveContext with_assembly(..)",
        );
        let out = amg_pcg_solve_impl(
            ctx.tile,
            asm.density,
            asm.coefficient,
            asm.rx,
            asm.ry,
            u,
            b,
            ws,
            self.opts,
            self.amg,
        );
        match &mut self.mg_trace {
            Some(t) => t.merge(&out.mg_trace),
            None => self.mg_trace = Some(out.mg_trace),
        }
        trace.merge(&out.result.trace);
        out.result
    }

    fn take_diagnostics(&mut self) -> Option<Box<dyn std::any::Any>> {
        self.take_mg_trace()
            .map(|t| Box::new(t) as Box<dyn std::any::Any>)
    }
}

/// Options for the AMG-PCG baseline solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct AmgPcgOpts {
    /// V-cycle smoothing configuration.
    pub mg: MgOpts,
}

/// Result of an AMG-PCG solve: the standard result plus the multigrid
/// trace.
#[derive(Debug)]
pub struct AmgSolveResult {
    /// Convergence data and outer-CG protocol.
    pub result: SolveResult,
    /// Per-level V-cycle protocol.
    pub mg_trace: MgTrace,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn amg_pcg_solve_impl<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    density: &Field2D,
    coefficient: Coefficient,
    rx: f64,
    ry: f64,
    u: &mut Field2D,
    b: &Field2D,
    ws: &mut Workspace,
    opts: SolveOpts,
    amg: AmgPcgOpts,
) -> AmgSolveResult {
    assert_eq!(
        tile.comm.size(),
        1,
        "the AMG baseline runs on a single tile; scaling comes from trace replay"
    );
    let mut hierarchy = MgHierarchy::build(density, coefficient, rx, ry, amg.mg);
    let mut mg_trace = MgTrace {
        level_shapes: hierarchy.shapes(),
        setup_cells: hierarchy.setup_cells,
        ..Default::default()
    };
    let mut trace = tea_core::SolveTrace::new("BoomerAMG");
    let bounds = &tile.op.bounds;

    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

    hierarchy.vcycle(&ws.r, &mut ws.z, &mut mg_trace);
    vector::copy(&mut ws.p, &ws.z, bounds, 0, &mut trace);

    let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
    let mut rro = tile.reduce_sum(rz_local, &mut trace);
    // the V-cycle is SPD for symmetric smoothing, so r·z is a norm
    let initial_residual = rro.abs().sqrt();
    if initial_residual == 0.0 {
        let result = SolveResult {
            converged: true,
            iterations: 0,
            initial_residual,
            final_residual: 0.0,
            status: tea_core::SolveStatus::Converged,
            trace,
        };
        return AmgSolveResult { result, mg_trace };
    }
    let target = opts.eps * initial_residual;

    let mut converged = false;
    let mut final_residual = initial_residual;
    let mut iterations = 0;

    while iterations < opts.max_iters {
        iterations += 1;
        trace.outer_iterations += 1;

        tile.exchange(&mut [&mut ws.p], 1, &mut trace);
        let pw_local = tile.op.apply_fused_dot(&ws.p, &mut ws.w, &mut trace);
        let pw = tile.reduce_sum(pw_local, &mut trace);
        let alpha = rro / pw;

        vector::axpy(u, alpha, &ws.p, bounds, 0, &mut trace);
        vector::axpy(&mut ws.r, -alpha, &ws.w, bounds, 0, &mut trace);

        hierarchy.vcycle(&ws.r, &mut ws.z, &mut mg_trace);

        let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
        let rrn = tile.reduce_sum(rz_local, &mut trace);
        final_residual = rrn.abs().sqrt();
        if final_residual <= target {
            converged = true;
            break;
        }
        let beta = rrn / rro;
        vector::xpay(&mut ws.p, &ws.z, beta, bounds, 0, &mut trace);
        rro = rrn;
    }

    let result = SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status: tea_core::SolveStatus::from_converged(converged),
        trace,
    };
    AmgSolveResult { result, mg_trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_comms::{HaloLayout, SerialComm};
    use tea_core::{Solve, SolveTrace, TileBounds, TileOperator};
    use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Mesh2D};

    struct Setup {
        op: TileOperator,
        density: Field2D,
        b: Field2D,
        coefficient: Coefficient,
        rx: f64,
        ry: f64,
    }

    fn setup(n: usize) -> Setup {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, 1);
        let mut energy = Field2D::new(n, n, 1);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, 1);
        let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
        let mut b = Field2D::new(n, n, 1);
        for k in 0..n as isize {
            for j in 0..n as isize {
                b.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        Setup {
            op,
            density,
            b,
            coefficient: p.coefficient,
            rx,
            ry,
        }
    }

    fn run(n: usize) -> (AmgSolveResult, Field2D, Setup) {
        let s = setup(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&s.op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = s.b.clone();
        let res = amg_pcg_solve_impl(
            &tile,
            &s.density,
            s.coefficient,
            s.rx,
            s.ry,
            &mut u,
            &s.b,
            &mut ws,
            SolveOpts::with_eps(1e-9),
            AmgPcgOpts::default(),
        );
        (res, u, s)
    }

    #[test]
    fn amg_pcg_converges_and_solves() {
        let (res, u, s) = run(32);
        assert!(res.result.converged, "{:?}", res.result);
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(32, 32, 1);
        s.op.residual(&u, &s.b, &mut r, 0, &mut t);
        assert!(r.interior_norm() / s.b.interior_norm() < 1e-7);
        assert_eq!(res.mg_trace.vcycles, res.result.iterations + 1);
        assert!(!res.mg_trace.level_shapes.is_empty());
    }

    #[test]
    fn iteration_count_is_nearly_mesh_independent() {
        let (r32, ..) = run(32);
        let (r64, ..) = run(64);
        let (i32v, i64v) = (r32.result.iterations, r64.result.iterations);
        assert!(r32.result.converged && r64.result.converged);
        // the hallmark of multigrid: doubling the mesh should not
        // meaningfully grow the iteration count
        assert!(
            i64v <= i32v * 2,
            "AMG iterations grew too fast: {i32v} -> {i64v}"
        );
        assert!(i64v < 60, "AMG should converge in few iterations: {i64v}");
    }

    #[test]
    fn amg_pcg_beats_plain_cg_on_iterations() {
        let (res, _, s) = run(64);
        let mut u = s.b.clone();
        let cg = Solve::on(&s.op)
            .with_solver("cg")
            .eps(1e-9)
            .run(&mut u, &s.b)
            .expect("cg is registered");
        assert!(cg.converged);
        assert!(
            res.result.iterations * 2 < cg.iterations,
            "AMG-PCG ({}) must need far fewer iterations than CG ({})",
            res.result.iterations,
            cg.iterations
        );
    }

    #[test]
    fn trace_records_per_level_work() {
        let (res, ..) = run(64);
        let t = &res.mg_trace;
        assert!(t.setup_cells >= 64 * 64);
        assert_eq!(t.coarse_solves, t.vcycles);
        // every level above the coarsest gets sweeps each cycle
        for l in 0..t.level_shapes.len() - 1 {
            assert!(
                t.sweeps_at(l) >= t.vcycles,
                "level {l} undercounted: {} sweeps for {} cycles",
                t.sweeps_at(l),
                t.vcycles
            );
        }
    }
}
