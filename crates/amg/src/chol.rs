//! Dense Cholesky factorisation for the multigrid coarsest-level solve.
//!
//! BoomerAMG solves its coarsest grid directly; we do the same. The
//! coarsest level of the hierarchy is at most a few hundred unknowns, so
//! a dense `LLᵀ` factorisation built once at setup and reused every
//! V-cycle is both faithful and fast.

/// A dense symmetric positive definite matrix factorised as `L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Lower-triangular factor, row-major, full storage.
    l: Vec<f64>,
}

impl Cholesky {
    /// Factorises the dense SPD matrix `a` (row-major `n x n`).
    ///
    /// # Panics
    /// Panics if the matrix is not positive definite (a zero or negative
    /// pivot appears) or if `a` has the wrong length.
    pub fn factor(a: &[f64], n: usize) -> Self {
        assert_eq!(a.len(), n * n, "matrix must be n*n");
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    assert!(
                        s > 0.0,
                        "matrix not positive definite at pivot {i} (s = {s})"
                    );
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Cholesky { n, l }
    }

    /// Unknown count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place (`b` becomes `x`).
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let l = &self.l;
        // forward: L y = b
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[i * n + k] * b[k];
            }
            b[i] = s / l[i * n + i];
        }
        // backward: L^T x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in i + 1..n {
                s -= l[k * n + i] * b[k];
            }
            b[i] = s / l[i * n + i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matvec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn factor_and_solve_small_spd() {
        // A = [[4,1,0],[1,3,1],[0,1,2]]
        let a = vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let c = Cholesky::factor(&a, 3);
        assert_eq!(c.n(), 3);
        let x_true = vec![1.0, -2.0, 3.0];
        let mut b = matvec(&a, &x_true, 3);
        c.solve_in_place(&mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_is_its_own_inverse() {
        let n = 5;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let c = Cholesky::factor(&a, n);
        let mut b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        c.solve_in_place(&mut b);
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn random_spd_roundtrip() {
        // A = B^T B + n*I is SPD for any B
        let n = 20;
        let mut b_mat = vec![0.0; n * n];
        let mut state = 12345u64;
        let mut rng = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for v in b_mat.iter_mut() {
            *v = rng();
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    s += b_mat[k * n + i] * b_mat[k * n + j];
                }
                a[i * n + j] = s;
            }
        }
        let c = Cholesky::factor(&a, n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 10.0).collect();
        let mut rhs = matvec(&a, &x_true, n);
        c.solve_in_place(&mut rhs);
        for (got, want) in rhs.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    #[should_panic]
    fn indefinite_matrix_rejected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        let _ = Cholesky::factor(&a, 2);
    }
}
