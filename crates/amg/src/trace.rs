//! Multigrid solve traces.
//!
//! The V-cycle touches every level per cycle: smoothing sweeps, residual
//! and transfer operators, and (on a distributed machine) one halo
//! exchange per level sweep plus the coarse-solve gather. [`MgTrace`]
//! extends the flat `tea-core` trace with the per-level structure the
//! performance model needs to reproduce BoomerAMG's strong-scaling
//! collapse: coarse levels have almost no cells per rank, so each sweep
//! there is pure latency.

use std::collections::BTreeMap;
use tea_core::SolveTrace;

/// Protocol record of an AMG-preconditioned solve.
#[derive(Debug, Clone, Default)]
pub struct MgTrace {
    /// Outer-CG protocol on the finest grid (reductions, fine-grid spmv,
    /// fine halo exchanges).
    pub outer: SolveTrace,
    /// Kernel sweeps per level (smoothing + residual + transfers), each
    /// of which implies one depth-1 halo exchange at that level's tile
    /// size on a distributed run.
    pub level_sweeps: BTreeMap<u32, u64>,
    /// Per-level global shapes `(nx, ny)`, finest first.
    pub level_shapes: Vec<(usize, usize)>,
    /// V-cycles executed.
    pub vcycles: u64,
    /// Coarsest-level direct solves (a gather + broadcast on a
    /// distributed run).
    pub coarse_solves: u64,
    /// Cells touched building the hierarchy (setup cost, paid every time
    /// step because the coefficients change).
    pub setup_cells: u64,
}

impl MgTrace {
    /// Records one kernel sweep on `level`.
    pub fn record_level_sweep(&mut self, level: usize) {
        *self.level_sweeps.entry(level as u32).or_insert(0) += 1;
    }

    /// Total sweeps across all levels.
    pub fn total_level_sweeps(&self) -> u64 {
        self.level_sweeps.values().sum()
    }

    /// Sweeps on one level.
    pub fn sweeps_at(&self, level: usize) -> u64 {
        self.level_sweeps.get(&(level as u32)).copied().unwrap_or(0)
    }

    /// Accumulates another trace (multi-step driver runs).
    pub fn merge(&mut self, other: &MgTrace) {
        self.outer.merge(&other.outer);
        for (&l, &n) in &other.level_sweeps {
            *self.level_sweeps.entry(l).or_insert(0) += n;
        }
        if self.level_shapes.is_empty() {
            self.level_shapes = other.level_shapes.clone();
        }
        self.vcycles += other.vcycles;
        self.coarse_solves += other.coarse_solves;
        self.setup_cells += other.setup_cells;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_sweep_accounting() {
        let mut t = MgTrace::default();
        t.record_level_sweep(0);
        t.record_level_sweep(0);
        t.record_level_sweep(3);
        assert_eq!(t.total_level_sweeps(), 3);
        assert_eq!(t.sweeps_at(0), 2);
        assert_eq!(t.sweeps_at(3), 1);
        assert_eq!(t.sweeps_at(1), 0);
    }
}
