//! # tea-amg — multigrid-preconditioned CG baseline
//!
//! The paper benchmarks TeaLeaf's CPPCG against "PETSc CG + Hypre
//! BoomerAMG". Neither library fits a from-scratch reproduction, so this
//! crate implements the equivalent method directly: a geometric multigrid
//! [`hierarchy`] (on TeaLeaf's regular grids, BoomerAMG's coarsening
//! degenerates to geometric 2x2 aggregation) used as a V-cycle
//! preconditioner inside CG ([`pcg`]), with a dense Cholesky coarsest
//! solve ([`chol`]) and per-level protocol traces ([`trace`]) for the
//! strong-scaling model.
//!
//! See DESIGN.md §3 (substitution 3) for why this preserves the baseline
//! behaviours that matter: near-mesh-independent iteration counts, heavy
//! setup, and per-iteration communication on every level.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod chol;
pub mod hierarchy;
pub mod pcg;
pub mod trace;

pub use chol::Cholesky;
pub use hierarchy::{MgHierarchy, MgOpts, COARSEST_CELLS, JACOBI_WEIGHT};
pub use pcg::{full_registry, register, AmgPcg, AmgPcgOpts, AmgSolveResult, AMG_META};
pub use trace::MgTrace;
