//! # tea-fault — deterministic fault injection for TeaLeaf-rs
//!
//! Robustness claims are only testable if faults are *reproducible*.
//! This crate provides a seeded, wall-clock-free [`FaultPlan`] that
//! decides — purely from a seed and a job index — whether a job is
//! faulted and how:
//!
//! * [`FaultKind::PoisonNan`] plants `NaN` into the iterate and
//!   residual of a running solve at a chosen outer iteration, through
//!   the [`tea_core::SolveProbe`] hook ([`NanPoison`]).
//! * [`FaultKind::PanicWorker`] makes the serving worker executing the
//!   job panic mid-job (the serve layer's `catch_unwind` isolation is
//!   what's under test).
//! * [`FaultKind::CorruptHalo`] / [`FaultKind::DropHalo`] mangle halo
//!   payloads in flight through the [`tea_comms::PayloadTap`] hook
//!   ([`ChaosTap`]): corruption NaN-poisons one element, a "drop"
//!   delivers a zeroed payload in place (the threaded rendezvous is
//!   bulk-synchronous, so a genuinely withheld frame would deadlock
//!   rather than model a lost message).
//!
//! Everything is derived with splitmix64 from `seed ^ index` — no
//! clocks, no global RNG state — so the same plan replayed at any
//! worker count faults exactly the same jobs the same way.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::Mutex;

use tea_comms::{Payload, PayloadTap};
use tea_core::SolveProbe;
use tea_mesh::{Field2D, Field2F};

/// splitmix64: the canonical 64-bit finalizer-style mixer. One round is
/// enough to decorrelate adjacent job indices.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One way a job (or a message) can be made to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Plant `NaN` in the iterate and residual at outer iteration
    /// `iteration` of the job's first solve attempt.
    PoisonNan {
        /// Outer iteration (1-based) at which the poison lands.
        iteration: u64,
    },
    /// Panic the worker thread mid-job.
    PanicWorker,
    /// NaN-poison one element of a halo payload in flight.
    CorruptHalo,
    /// Replace a halo payload with zeros (a modelled lost message).
    DropHalo,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::PoisonNan { iteration } => {
                write!(f, "poison-nan@iter{iteration}")
            }
            FaultKind::PanicWorker => write!(f, "panic-worker"),
            FaultKind::CorruptHalo => write!(f, "corrupt-halo"),
            FaultKind::DropHalo => write!(f, "drop-halo"),
        }
    }
}

/// A seeded, deterministic assignment of faults to job indices.
///
/// `fault_for(job)` is a pure function of `(seed, job)`: roughly
/// `rate` of all jobs are faulted, and a faulted job's [`FaultKind`]
/// and parameters are fixed by the same hash — replaying the plan at a
/// different worker count or interleaving reproduces it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Fault probability in thousandths (0..=1000).
    rate_per_mille: u32,
    /// Serving plans only inject faults the serve layer can both cause
    /// and observe per-job (poison + panic); halo chaos needs the
    /// communicator tap and is exercised by [`ChaosTap`] instead.
    serving_only: bool,
}

impl FaultPlan {
    /// A plan faulting about `rate` (0.0..=1.0) of jobs across all
    /// fault kinds.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate_per_mille: (rate.clamp(0.0, 1.0) * 1000.0).round() as u32,
            serving_only: false,
        }
    }

    /// A plan restricted to the kinds a serving queue can inject
    /// per-job without a communicator hook: [`FaultKind::PoisonNan`]
    /// and [`FaultKind::PanicWorker`].
    pub fn serving(seed: u64, rate: f64) -> Self {
        FaultPlan {
            serving_only: true,
            ..FaultPlan::new(seed, rate)
        }
    }

    /// Parses the CLI form `seed:rate`, e.g. `42:0.2`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (seed, rate) = s
            .split_once(':')
            .ok_or_else(|| format!("fault plan `{s}` is not of the form seed:rate"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|e| format!("fault plan seed `{seed}` is not a u64: {e}"))?;
        let rate: f64 = rate
            .trim()
            .parse()
            .map_err(|e| format!("fault plan rate `{rate}` is not a number: {e}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault plan rate {rate} is outside 0.0..=1.0"));
        }
        Ok(FaultPlan::serving(seed, rate))
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault this plan assigns to job `job`, if any. Pure: same
    /// plan + same index ⇒ same answer, on any thread at any time.
    pub fn fault_for(&self, job: usize) -> Option<FaultKind> {
        let h = splitmix64(self.seed ^ splitmix64(job as u64));
        if (h % 1000) as u32 >= self.rate_per_mille {
            return None;
        }
        let pick = splitmix64(h);
        let kinds: u64 = if self.serving_only { 2 } else { 4 };
        Some(match pick % kinds {
            0 => FaultKind::PoisonNan {
                iteration: pick >> 8 & 0xF | 1, // 1..=15, early enough to land
            },
            1 => FaultKind::PanicWorker,
            2 => FaultKind::CorruptHalo,
            _ => FaultKind::DropHalo,
        })
    }
}

/// A [`SolveProbe`] that plants `NaN` into the center of the iterate
/// and residual at one chosen outer iteration — the probe form of
/// [`FaultKind::PoisonNan`]. Works on both `f64` and fully-`f32`
/// solves.
#[derive(Debug, Clone, Copy)]
pub struct NanPoison {
    /// The outer iteration (1-based) to poison.
    pub iteration: u64,
}

impl NanPoison {
    fn center(nx: usize, ny: usize) -> (isize, isize) {
        ((nx / 2) as isize, (ny / 2) as isize)
    }
}

impl SolveProbe for NanPoison {
    fn on_iteration(&self, iteration: u64, u: &mut Field2D, r: &mut Field2D) {
        if iteration == self.iteration {
            let (j, k) = Self::center(u.nx(), u.ny());
            u.set(j, k, f64::NAN);
            r.set(j, k, f64::NAN);
        }
    }

    fn on_iteration_f32(&self, iteration: u64, u: &mut Field2F, r: &mut Field2F) {
        if iteration == self.iteration {
            let (j, k) = Self::center(u.nx(), u.ny());
            u.set(j, k, f32::NAN);
            r.set(j, k, f32::NAN);
        }
    }
}

/// A [`PayloadTap`] that deterministically mangles a fraction of
/// point-to-point halo payloads: corruption NaN-poisons one element,
/// a drop zeroes the whole payload (delivered in place, because the
/// bulk-synchronous rendezvous would deadlock on a truly withheld
/// frame). Decisions hash `(seed, from, to, per-pair sequence number)`
/// so a run faults the same frames every time.
pub struct ChaosTap {
    seed: u64,
    rate_per_mille: u32,
    seq: Mutex<BTreeMap<(usize, usize), u64>>,
}

impl ChaosTap {
    /// A tap faulting about `rate` (0.0..=1.0) of payloads.
    pub fn new(seed: u64, rate: f64) -> Self {
        ChaosTap {
            seed,
            rate_per_mille: (rate.clamp(0.0, 1.0) * 1000.0).round() as u32,
            seq: Mutex::new(BTreeMap::new()),
        }
    }
}

impl PayloadTap for ChaosTap {
    fn tap(&self, from: usize, to: usize, _tag: u64, data: Payload) -> Payload {
        let seq = {
            let mut map = tea_core::lock_tolerant(&self.seq);
            let ctr = map.entry((from, to)).or_insert(0);
            let s = *ctr;
            *ctr += 1;
            s
        };
        let key = self.seed ^ splitmix64((from as u64) << 40 | (to as u64) << 20 | seq);
        let h = splitmix64(key);
        if (h % 1000) as u32 >= self.rate_per_mille {
            return data;
        }
        let drop = splitmix64(h) & 1 == 0;
        match data {
            Payload::F64(mut v) => {
                if drop {
                    v.iter_mut().for_each(|x| *x = 0.0);
                } else if !v.is_empty() {
                    let i = (splitmix64(h) >> 1) as usize % v.len();
                    v[i] = f64::NAN;
                }
                Payload::F64(v)
            }
            Payload::F32(mut v) => {
                if drop {
                    v.iter_mut().for_each(|x| *x = 0.0);
                } else if !v.is_empty() {
                    let i = (splitmix64(h) >> 1) as usize % v.len();
                    v[i] = f32::NAN;
                }
                Payload::F32(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::new(42, 0.2);
        let a: Vec<_> = (0..1000).map(|j| plan.fault_for(j)).collect();
        let b: Vec<_> = (0..1000).map(|j| plan.fault_for(j)).collect();
        assert_eq!(a, b, "fault_for must be a pure function of (seed, job)");
        let faulted = a.iter().filter(|f| f.is_some()).count();
        // 20% nominal; allow generous slack for hash noise.
        assert!((100..=300).contains(&faulted), "faulted {faulted}/1000");
        // a different seed faults a different set
        let other = FaultPlan::new(43, 0.2);
        assert!((0..1000).any(|j| plan.fault_for(j) != other.fault_for(j)));
    }

    #[test]
    fn serving_plan_never_emits_halo_faults() {
        let plan = FaultPlan::serving(7, 1.0);
        for j in 0..500 {
            match plan.fault_for(j) {
                Some(FaultKind::PoisonNan { iteration }) => {
                    assert!((1..=15).contains(&iteration))
                }
                Some(FaultKind::PanicWorker) | None => {}
                Some(k) => panic!("serving plan emitted {k}"),
            }
        }
    }

    #[test]
    fn zero_and_full_rates_are_honoured() {
        let none = FaultPlan::new(1, 0.0);
        assert!((0..200).all(|j| none.fault_for(j).is_none()));
        let all = FaultPlan::new(1, 1.0);
        assert!((0..200).all(|j| all.fault_for(j).is_some()));
    }

    #[test]
    fn parse_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse("42:0.25").unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rate_per_mille, 250);
        assert!(plan.serving_only);
        assert!(FaultPlan::parse("42").is_err());
        assert!(FaultPlan::parse("x:0.5").is_err());
        assert!(FaultPlan::parse("42:nope").is_err());
        assert!(FaultPlan::parse("42:1.5").is_err());
    }

    #[test]
    fn nan_poison_fires_only_at_its_iteration() {
        let probe = NanPoison { iteration: 3 };
        let mut u = Field2D::new(8, 8, 1);
        let mut r = Field2D::new(8, 8, 1);
        probe.on_iteration(2, &mut u, &mut r);
        assert!(u.raw().iter().all(|x| x.is_finite()));
        probe.on_iteration(3, &mut u, &mut r);
        assert!(u.at(4, 4).is_nan());
        assert!(r.at(4, 4).is_nan());
        // f32 variant too
        let mut uf = Field2F::new(8, 8, 1);
        let mut rf = Field2F::new(8, 8, 1);
        probe.on_iteration_f32(3, &mut uf, &mut rf);
        assert!(uf.at(4, 4).is_nan());
        assert!(rf.at(4, 4).is_nan());
    }

    #[test]
    fn chaos_tap_is_deterministic_per_sequence() {
        let run = |seed| {
            let tap = ChaosTap::new(seed, 0.5);
            (0..64)
                .map(
                    |_| match tap.tap(0, 1, 7, Payload::F64(vec![1.0, 2.0, 3.0])) {
                        Payload::F64(v) => v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        Payload::F32(_) => unreachable!(),
                    },
                )
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "same seed, same frame sequence");
        let faulted = run(9)
            .iter()
            .filter(|v| {
                v.iter().any(|&b| {
                    b != 1.0f64.to_bits() && b != 2.0f64.to_bits() && b != 3.0f64.to_bits()
                })
            })
            .count();
        assert!(faulted > 0, "a 50% tap must fault something in 64 frames");
        assert!(faulted < 64, "and must not fault everything");
    }

    #[test]
    fn chaos_tap_drop_zeroes_and_corrupt_nans() {
        // At rate 1.0 every frame is faulted; across many frames both
        // kinds must appear, and each is exactly zeroing or one-NaN.
        let tap = ChaosTap::new(3, 1.0);
        let (mut drops, mut corrupts) = (0, 0);
        for _ in 0..64 {
            match tap.tap(2, 0, 1, Payload::F32(vec![5.0; 6])) {
                Payload::F32(v) => {
                    if v.iter().all(|&x| x == 0.0) {
                        drops += 1;
                    } else {
                        assert_eq!(v.iter().filter(|x| x.is_nan()).count(), 1);
                        assert_eq!(v.iter().filter(|&&x| x == 5.0).count(), 5);
                        corrupts += 1;
                    }
                }
                Payload::F64(_) => unreachable!(),
            }
        }
        assert!(
            drops > 0 && corrupts > 0,
            "drops={drops} corrupts={corrupts}"
        );
    }
}
